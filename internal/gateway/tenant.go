package gateway

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"finelb/internal/obs"
)

// Defaults for tenant knobs left zero.
const (
	// DefaultStickyTTL is how long an idle session keeps its node
	// affinity.
	DefaultStickyTTL = time.Minute
	// DefaultStickySessions caps one tenant's sticky table.
	DefaultStickySessions = 65536
	// DefaultStickyOverload is the pinned node's load index at or above
	// which the router considers spending a violation token to move a
	// session (the Liang–Borst delay side of the trade-off).
	DefaultStickyOverload = 4
)

// TenantConfig is one tenant's contract with the front door: how much
// traffic it may offer (token-bucket rate limit), how much may be in
// flight at once (admission control), and whether its sessions get
// affinity routing with a bounded violation budget.
type TenantConfig struct {
	// Name identifies the tenant; requests carry it in X-Tenant.
	Name string

	// RateLimit is the sustained request rate in requests/second; zero
	// or negative means unlimited. Burst is the bucket depth (defaults
	// to RateLimit, at least 1).
	RateLimit float64
	Burst     float64

	// MaxInflight caps the tenant's concurrently admitted requests;
	// zero or negative means unlimited. The cap is what keeps one
	// saturating tenant from occupying every backend slot.
	MaxInflight int

	// Sticky enables session-affinity routing for requests carrying an
	// X-Session key: the session's first access pins it to the node the
	// configured policy chose, and later accesses go back there.
	Sticky bool
	// StickyTTL expires idle sessions (default DefaultStickyTTL).
	StickyTTL time.Duration
	// StickySessions caps the tenant's session table (default
	// DefaultStickySessions).
	StickySessions int
	// StickyOverload is the pinned node's last-reported load index at
	// or above which the router tries to move the session elsewhere
	// (default DefaultStickyOverload; negative disables load-triggered
	// moves, so only a vanished node breaks affinity).
	StickyOverload int
	// ViolationRate and ViolationBurst budget discretionary stickiness
	// violations (token bucket, violations/second): with no tokens the
	// session sticks to its busy node and eats the delay; with tokens
	// it is re-routed by policy and the move is counted. Zero rate
	// means no budget — affinity is only broken when the node is gone.
	ViolationRate  float64
	ViolationBurst float64

	// ServiceUs is the emulated service demand in microseconds for
	// requests that do not specify service_us themselves.
	ServiceUs uint32
}

// withDefaults fills zero knobs.
func (c TenantConfig) withDefaults() TenantConfig {
	if c.StickyTTL == 0 {
		c.StickyTTL = DefaultStickyTTL
	}
	if c.StickySessions <= 0 {
		c.StickySessions = DefaultStickySessions
	}
	if c.StickyOverload == 0 {
		c.StickyOverload = DefaultStickyOverload
	}
	return c
}

// ParseTenants parses the cmd/lbgw -tenants specification: a
// semicolon-separated list of tenants, each "name" or
// "name:key=value,key=value,...". Keys:
//
//	rate=F      sustained requests/second (0 = unlimited)
//	burst=F     rate-limit bucket depth
//	inflight=N  admission cap on concurrent requests
//	sticky      enable session-affinity routing (flag, no value)
//	ttl=DUR     idle-session affinity lifetime (time.ParseDuration)
//	sessions=N  sticky-table capacity
//	overload=N  load index that triggers a discretionary move
//	budget=F    stickiness violations/second allowed
//	budgetburst=F  violation-bucket depth
//	serviceus=N default emulated service demand, microseconds
//
// Example: "paid:rate=500,burst=50,inflight=64,sticky,budget=5;free:rate=50".
func ParseTenants(spec string) ([]TenantConfig, error) {
	var out []TenantConfig
	seen := make(map[string]bool)
	for _, ts := range strings.Split(spec, ";") {
		ts = strings.TrimSpace(ts)
		if ts == "" {
			continue
		}
		name, opts, _ := strings.Cut(ts, ":")
		name = strings.TrimSpace(name)
		if name == "" {
			return nil, fmt.Errorf("gateway: tenant with empty name in %q", ts)
		}
		if seen[name] {
			return nil, fmt.Errorf("gateway: duplicate tenant %q", name)
		}
		seen[name] = true
		cfg := TenantConfig{Name: name}
		for _, kv := range strings.Split(opts, ",") {
			kv = strings.TrimSpace(kv)
			if kv == "" {
				continue
			}
			key, val, hasVal := strings.Cut(kv, "=")
			var err error
			switch key {
			case "sticky":
				if hasVal {
					return nil, fmt.Errorf("gateway: tenant %q: sticky takes no value", name)
				}
				cfg.Sticky = true
			case "rate":
				cfg.RateLimit, err = strconv.ParseFloat(val, 64)
			case "burst":
				cfg.Burst, err = strconv.ParseFloat(val, 64)
			case "inflight":
				cfg.MaxInflight, err = strconv.Atoi(val)
			case "ttl":
				cfg.StickyTTL, err = time.ParseDuration(val)
			case "sessions":
				cfg.StickySessions, err = strconv.Atoi(val)
			case "overload":
				cfg.StickyOverload, err = strconv.Atoi(val)
			case "budget":
				cfg.ViolationRate, err = strconv.ParseFloat(val, 64)
			case "budgetburst":
				cfg.ViolationBurst, err = strconv.ParseFloat(val, 64)
			case "serviceus":
				var v uint64
				v, err = strconv.ParseUint(val, 10, 32)
				cfg.ServiceUs = uint32(v)
			default:
				return nil, fmt.Errorf("gateway: tenant %q: unknown option %q", name, key)
			}
			if err != nil {
				return nil, fmt.Errorf("gateway: tenant %q: option %q: %v", name, kv, err)
			}
		}
		out = append(out, cfg)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("gateway: no tenants in spec %q", spec)
	}
	return out, nil
}

// tenantMetrics is one tenant's slice of the gateway catalog: derived
// per-tenant names (obs.TenantMetric) resolved once at startup so the
// request path is map-free.
type tenantMetrics struct {
	requests *obs.Counter
	admitted *obs.Counter
	latency  *obs.Histogram
}

// tenant is one tenant's runtime state.
type tenant struct {
	cfg      TenantConfig
	limiter  *TokenBucket // request rate limit (nil = unlimited)
	budget   *TokenBucket // stickiness violation budget (nil = none)
	sessions *stickyTable
	inflight atomic.Int64
	m        tenantMetrics
}

func newTenant(cfg TenantConfig, reg *obs.Registry) *tenant {
	cfg = cfg.withDefaults()
	return &tenant{
		cfg:      cfg,
		limiter:  NewTokenBucket(cfg.RateLimit, cfg.Burst),
		budget:   NewTokenBucket(cfg.ViolationRate, cfg.ViolationBurst),
		sessions: newStickyTable(cfg.StickyTTL, cfg.StickySessions),
		m: tenantMetrics{
			requests: reg.Counter(obs.TenantMetric(obs.MetricGatewayRequests, cfg.Name)),
			admitted: reg.Counter(obs.TenantMetric(obs.MetricGatewayAdmitted, cfg.Name)),
			latency:  reg.Histogram(obs.TenantMetric(obs.MetricGatewayLatencySeconds, cfg.Name), obs.LatencyBuckets(), obs.Timing()),
		},
	}
}

// admit reserves one in-flight slot, reporting false at the cap.
func (t *tenant) admit() bool {
	if t.cfg.MaxInflight <= 0 {
		t.inflight.Add(1)
		return true
	}
	for {
		cur := t.inflight.Load()
		if cur >= int64(t.cfg.MaxInflight) {
			return false
		}
		if t.inflight.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

// release returns an admitted slot.
func (t *tenant) release() { t.inflight.Add(-1) }
