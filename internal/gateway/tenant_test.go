package gateway

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"finelb/internal/obs"
)

func TestParseTenants(t *testing.T) {
	t.Run("full-spec", func(t *testing.T) {
		got, err := ParseTenants("paid:rate=500,burst=50,inflight=64,sticky,budget=5;free:rate=50")
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 2 {
			t.Fatalf("parsed %d tenants, want 2", len(got))
		}
		paid := got[0]
		if paid.Name != "paid" || paid.RateLimit != 500 || paid.Burst != 50 ||
			paid.MaxInflight != 64 || !paid.Sticky || paid.ViolationRate != 5 {
			t.Fatalf("paid parsed as %+v", paid)
		}
		free := got[1]
		if free.Name != "free" || free.RateLimit != 50 || free.Sticky {
			t.Fatalf("free parsed as %+v", free)
		}
	})
	t.Run("all-keys", func(t *testing.T) {
		got, err := ParseTenants("a:sticky,ttl=30s,sessions=10,overload=2,budgetburst=3,serviceus=250")
		if err != nil {
			t.Fatal(err)
		}
		c := got[0]
		if c.StickyTTL != 30*time.Second || c.StickySessions != 10 ||
			c.StickyOverload != 2 || c.ViolationBurst != 3 || c.ServiceUs != 250 {
			t.Fatalf("parsed as %+v", c)
		}
	})
	t.Run("bare-name", func(t *testing.T) {
		got, err := ParseTenants("solo")
		if err != nil || len(got) != 1 || got[0].Name != "solo" {
			t.Fatalf("ParseTenants(solo) = %+v, %v", got, err)
		}
	})

	errCases := []struct {
		name, spec, wantSub string
	}{
		{"empty", "", "no tenants"},
		{"only-separators", " ; ; ", "no tenants"},
		{"duplicate", "a;a", "duplicate"},
		{"empty-name", ":rate=1", "empty name"},
		{"unknown-key", "a:bogus=1", "unknown option"},
		{"bad-value", "a:rate=fast", `option "rate=fast"`},
		{"sticky-with-value", "a:sticky=1", "sticky takes no value"},
	}
	for _, tc := range errCases {
		t.Run("err-"+tc.name, func(t *testing.T) {
			_, err := ParseTenants(tc.spec)
			if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("ParseTenants(%q) err = %v, want substring %q", tc.spec, err, tc.wantSub)
			}
		})
	}
}

func TestTenantConfigDefaults(t *testing.T) {
	c := TenantConfig{Name: "x"}.withDefaults()
	if c.StickyTTL != DefaultStickyTTL || c.StickySessions != DefaultStickySessions ||
		c.StickyOverload != DefaultStickyOverload {
		t.Fatalf("defaults = %+v", c)
	}
	// A negative overload threshold disables load-triggered moves and
	// must survive defaulting.
	c = TenantConfig{Name: "x", StickyOverload: -1}.withDefaults()
	if c.StickyOverload != -1 {
		t.Fatalf("negative StickyOverload rewritten to %d", c.StickyOverload)
	}
}

func TestTenantAdmitCap(t *testing.T) {
	tn := newTenant(TenantConfig{Name: "x", MaxInflight: 2}, obs.NewRegistry())
	if !tn.admit() || !tn.admit() {
		t.Fatal("admission denied below the cap")
	}
	if tn.admit() {
		t.Fatal("admission granted at the cap")
	}
	tn.release()
	if !tn.admit() {
		t.Fatal("admission denied after a release freed a slot")
	}
	for i := 0; i < 2; i++ {
		tn.release()
	}
	if got := tn.inflight.Load(); got != 0 {
		t.Fatalf("inflight after drain = %d, want 0", got)
	}
}

func TestTenantAdmitUnlimited(t *testing.T) {
	tn := newTenant(TenantConfig{Name: "x"}, obs.NewRegistry())
	for i := 0; i < 100; i++ {
		if !tn.admit() {
			t.Fatalf("unlimited tenant denied admission at %d in flight", i)
		}
	}
}

func TestTenantAdmitConcurrent(t *testing.T) {
	// 16 goroutines hammer admit/release against a cap of 4; the
	// observed in-flight count must never exceed the cap and must
	// drain to zero. Under -race this also exercises the CAS loop.
	tn := newTenant(TenantConfig{Name: "x", MaxInflight: 4}, obs.NewRegistry())
	var (
		wg  sync.WaitGroup
		max atomic.Int64
	)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if !tn.admit() {
					continue
				}
				cur := tn.inflight.Load()
				for {
					m := max.Load()
					if cur <= m || max.CompareAndSwap(m, cur) {
						break
					}
				}
				tn.release()
			}
		}()
	}
	wg.Wait()
	if got := max.Load(); got > 4 {
		t.Fatalf("observed %d in flight, cap is 4", got)
	}
	if got := tn.inflight.Load(); got != 0 {
		t.Fatalf("inflight after drain = %d, want 0", got)
	}
}
