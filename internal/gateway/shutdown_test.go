package gateway

import (
	"io"
	"net/http"
	"testing"
	"time"

	"finelb/internal/cluster"
	"finelb/internal/core"
	"finelb/internal/transport"
)

func shutdownCluster(t *testing.T, tr transport.Transport) *cluster.Cluster {
	t.Helper()
	cl, err := cluster.StartCluster(cluster.ExperimentConfig{
		Servers:   1,
		Clients:   1,
		Policy:    core.NewRandom(),
		Transport: tr,
		SlowProb:  -1,
		Seed:      1,
	})
	if err != nil {
		t.Fatalf("StartCluster: %v", err)
	}
	t.Cleanup(cl.Close)
	return cl
}

func TestGatewayShutdown(t *testing.T) {
	tr := transport.NewMem(transport.MemConfig{Seed: 7})
	cl := shutdownCluster(t, tr)
	gw, err := New(Config{
		Backends: cl.Clients,
		Tenants:  []TenantConfig{{Name: "t"}},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ln, err := tr.Listen()
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	if err := gw.Start(ln); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := gw.Start(ln); err == nil {
		t.Fatal("second Start succeeded")
	}

	hc := HTTPClient(tr, 2*time.Second)
	url := "http://" + gw.Addr()
	resp, err := hc.Get(url + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}

	if err := gw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Close closed the listener, which exits the accept loop; by the
	// time Close returns, the serve goroutine is gone.
	select {
	case <-gw.serveDone:
	default:
		t.Fatal("serve loop still running after Close returned")
	}
	// Idempotent: a second Close is a quiet no-op.
	if err := gw.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	// The address is gone from the fabric: new dials are refused.
	hc.CloseIdleConnections()
	if _, err := hc.Get(url + "/healthz"); err == nil {
		t.Fatal("request succeeded after Close")
	}
	// A closed gateway does not restart.
	if err := gw.Start(ln); err == nil {
		t.Fatal("Start after Close succeeded")
	}
}

func TestGatewayCloseBeforeStart(t *testing.T) {
	tr := transport.NewMem(transport.MemConfig{Seed: 8})
	cl := shutdownCluster(t, tr)
	gw, err := New(Config{
		Backends: cl.Clients,
		Tenants:  []TenantConfig{{Name: "t"}},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Close before Start has nothing to tear down and must not hang.
	if err := gw.Close(); err != nil {
		t.Fatalf("Close before Start: %v", err)
	}
	if err := gw.Start(nil); err == nil {
		t.Fatal("Start on a closed gateway succeeded")
	}
}
