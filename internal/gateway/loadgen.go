package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"finelb/internal/stats"
	"finelb/internal/transport"
)

// HTTPClient returns an HTTP client that dials through tr, so the load
// generator (and tests) reach a gateway served on the mem fabric — or
// any transport — with the standard net/http machinery. The timeout
// bounds both dials and whole requests.
func HTTPClient(tr transport.Transport, timeout time.Duration) *http.Client {
	return &http.Client{
		Timeout: timeout,
		Transport: &http.Transport{
			DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
				return tr.Dial(addr, timeout)
			},
			MaxIdleConnsPerHost: 256,
		},
	}
}

// LoadGenConfig drives RunLoadGen: an open-loop Poisson arrival stream
// of /access requests against one gateway, the HTTP analogue of the
// paper's open-loop access driver. Arrivals are scheduled from the
// seed up front, so lateness under overload queues (and is measured)
// instead of throttling the offered load.
type LoadGenConfig struct {
	// URL is the gateway base, e.g. "http://127.0.0.1:8080" or
	// "http://mem:3" with a matching Client.
	URL string
	// Client performs the requests (nil uses a plain loopback client
	// with a 10 s timeout; gateways on the mem fabric need
	// HTTPClient(fabric, ...)).
	Client *http.Client

	// Rate is the aggregate arrival rate in requests/second.
	Rate float64
	// Requests is the total number of requests to issue.
	Requests int

	// Tenants cycles request attribution (X-Tenant) round-robin; empty
	// sends no tenant header (the gateway's default tenant applies).
	Tenants []string
	// Sessions > 0 draws an X-Session key uniformly from that many
	// distinct sessions per tenant, exercising sticky routing; zero
	// sends no session key.
	Sessions int
	// ServiceUs, when non-zero, is sent as the per-request service_us.
	ServiceUs uint32

	Seed uint64
}

// LoadGenResult aggregates one generator run. Counts partition Sent:
// OK + RateLimited + RejectedAdmission + Overloads + Errors == Sent.
type LoadGenResult struct {
	Sent              int64
	OK                int64
	RateLimited       int64 // 429, X-Gateway-Reject: rate
	RejectedAdmission int64 // 503, X-Gateway-Reject: admission
	Overloads         int64 // 503, X-Gateway-Reject: overload
	Errors            int64 // transport errors and unclassified statuses

	Sticky     int64 // replies served by the session's pinned node
	Violations int64 // replies that report a broken affinity

	// Latency summarizes successful requests, measured from each
	// request's scheduled arrival instant (open-loop: client-side
	// lateness counts).
	Latency *stats.Summary
	Wall    time.Duration
}

// Describe renders the run in one line.
func (r *LoadGenResult) Describe() string {
	return fmt.Sprintf("sent=%d ok=%d limited=%d rejected=%d overload=%d err=%d sticky=%d violations=%d mean=%.3fms p95=%.3fms wall=%v",
		r.Sent, r.OK, r.RateLimited, r.RejectedAdmission, r.Overloads, r.Errors,
		r.Sticky, r.Violations,
		r.Latency.Mean()*1e3, r.Latency.Percentile(0.95)*1e3, r.Wall.Round(time.Millisecond))
}

// RunLoadGen issues cfg.Requests open-loop requests and blocks until
// every response (or failure) has been accounted.
func RunLoadGen(cfg LoadGenConfig) (*LoadGenResult, error) {
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("gateway: loadgen rate %v <= 0", cfg.Rate)
	}
	if cfg.Requests <= 0 {
		return nil, fmt.Errorf("gateway: loadgen requests %d <= 0", cfg.Requests)
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}

	// Pre-generate the whole arrival schedule and per-request identity
	// so generation cost is off the timed path.
	rng := stats.NewRNG(cfg.Seed ^ 0x6c6f616467656e) // "loadgen"
	type plan struct {
		at      float64 // seconds from start
		tenant  string
		session string
	}
	plans := make([]plan, cfg.Requests)
	at := 0.0
	for i := range plans {
		at += rng.ExpFloat64() / cfg.Rate
		plans[i].at = at
		if len(cfg.Tenants) > 0 {
			plans[i].tenant = cfg.Tenants[i%len(cfg.Tenants)]
		}
		if cfg.Sessions > 0 {
			plans[i].session = fmt.Sprintf("s%d", rng.Intn(cfg.Sessions))
		}
	}
	url := cfg.URL + "/access"
	if cfg.ServiceUs > 0 {
		url = fmt.Sprintf("%s?service_us=%d", url, cfg.ServiceUs)
	}

	res := &LoadGenResult{Latency: stats.NewSummary(true)}
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now().Add(10 * time.Millisecond)
	for i := range plans {
		p := plans[i]
		arrival := start.Add(time.Duration(p.at * float64(time.Second)))
		wg.Add(1)
		time.AfterFunc(time.Until(arrival), func() {
			defer wg.Done()
			req, err := http.NewRequest(http.MethodPost, url, nil)
			if err != nil {
				mu.Lock()
				res.Sent++
				res.Errors++
				mu.Unlock()
				return
			}
			if p.tenant != "" {
				req.Header.Set("X-Tenant", p.tenant)
			}
			if p.session != "" {
				req.Header.Set("X-Session", p.session)
			}
			resp, err := client.Do(req)
			elapsed := time.Since(arrival)
			var reply AccessReply
			status, cause := 0, ""
			if err == nil {
				status = resp.StatusCode
				cause = resp.Header.Get("X-Gateway-Reject")
				if status == http.StatusOK {
					err = json.NewDecoder(resp.Body).Decode(&reply)
				} else {
					_, _ = io.Copy(io.Discard, resp.Body)
				}
				resp.Body.Close()
			}
			mu.Lock()
			defer mu.Unlock()
			res.Sent++
			switch {
			case err != nil:
				res.Errors++
			case status == http.StatusOK:
				res.OK++
				res.Latency.Add(elapsed.Seconds())
				if reply.Sticky {
					res.Sticky++
				}
				if reply.Violation {
					res.Violations++
				}
			case cause == RejectRate:
				res.RateLimited++
			case cause == RejectAdmission:
				res.RejectedAdmission++
			case cause == RejectOverload:
				res.Overloads++
			default:
				res.Errors++
			}
		})
	}
	wg.Wait()
	res.Wall = time.Since(start)
	return res, nil
}
