package gateway

import (
	"testing"
	"time"
)

func TestStickyTableTTLRefresh(t *testing.T) {
	tb := newStickyTable(time.Minute, 8)
	tb.assign("a", 3, at(0))
	if node, ok := tb.get("a", at(30)); !ok || node != 3 {
		t.Fatalf("get at +30s = (%d, %v), want (3, true)", node, ok)
	}
	// The hit at +30s refreshed the TTL: the pin survives past the
	// original +60s expiry...
	if _, ok := tb.get("a", at(89)); !ok {
		t.Fatal("pin expired despite TTL refresh at +30s")
	}
	// ...and a get exactly at the refreshed expiry still hits (expiry
	// is exclusive), refreshing again.
	if _, ok := tb.get("a", at(149)); !ok {
		t.Fatal("pin expired at the exclusive expiry instant")
	}
	// A gap longer than the TTL finally expires it.
	if _, ok := tb.get("a", at(149+61)); ok {
		t.Fatal("pin survived past its TTL")
	}
	if tb.size() != 0 {
		t.Fatalf("size after expiry = %d, want 0", tb.size())
	}
}

func TestStickyTableCapacity(t *testing.T) {
	tb := newStickyTable(time.Minute, 2)
	tb.assign("a", 0, at(0))
	tb.assign("b", 1, at(0))
	// At capacity with nothing expired, a new session is not pinned —
	// affinity degrades, memory does not grow.
	tb.assign("c", 2, at(1))
	if _, ok := tb.get("c", at(1)); ok {
		t.Fatal("new session pinned past capacity")
	}
	if tb.size() != 2 {
		t.Fatalf("size = %d, want 2", tb.size())
	}
	// Re-pinning an existing session is not growth and always lands.
	tb.assign("a", 5, at(1))
	if node, _ := tb.get("a", at(1)); node != 5 {
		t.Fatalf("re-pin ignored: node = %d, want 5", node)
	}
	// Once the residents expire, the at-capacity sweep makes room.
	tb.assign("c", 2, at(200))
	if node, ok := tb.get("c", at(200)); !ok || node != 2 {
		t.Fatalf("pin after sweep = (%d, %v), want (2, true)", node, ok)
	}
}

func TestStickyTableForget(t *testing.T) {
	tb := newStickyTable(time.Minute, 8)
	tb.assign("a", 1, at(0))
	tb.forget("a")
	if _, ok := tb.get("a", at(0)); ok {
		t.Fatal("forgotten pin still resolves")
	}
	tb.forget("never-pinned") // must not panic
}

func TestLoadTable(t *testing.T) {
	lt := newLoadTable()
	if got := lt.load(7); got != 0 {
		t.Fatalf("unknown node load = %d, want 0", got)
	}
	lt.note(7, 4)
	lt.note(2, 1)
	if got := lt.load(7); got != 4 {
		t.Fatalf("load(7) = %d, want 4", got)
	}
	lt.note(7, 0) // fresh replies overwrite
	if got := lt.load(7); got != 0 {
		t.Fatalf("load(7) after overwrite = %d, want 0", got)
	}
}
