package gateway

import (
	"sync"
	"time"
)

// TokenBucket is the gateway's rate limiter and stickiness-violation
// budget: a classic token bucket whose refill is computed from
// explicitly passed timestamps rather than an internal clock read.
// Passing the time in keeps the bucket a pure function of its call
// sequence, so tests drive boundary cases (exactly-at-limit, burst
// refill) with literal instants and zero sleeps, and the gateway's one
// injected clock stays the single time source of the request path.
//
// A nil *TokenBucket is the unlimited bucket: TakeAt always grants.
// NewTokenBucket returns nil for a non-positive rate, so "no limit
// configured" needs no branches at the call sites.
type TokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens added per second
	burst  float64 // bucket capacity (and initial fill)
	tokens float64
	last   time.Time // instant of the last refill accounting
}

// NewTokenBucket builds a bucket that refills at rate tokens/second up
// to burst. A non-positive rate returns nil (unlimited); a
// non-positive burst defaults to max(rate, 1) so a configured limiter
// always admits at least one request at a time.
func NewTokenBucket(rate, burst float64) *TokenBucket {
	if rate <= 0 {
		return nil
	}
	if burst <= 0 {
		burst = rate
		if burst < 1 {
			burst = 1
		}
	}
	return &TokenBucket{rate: rate, burst: burst, tokens: burst}
}

// TakeAt attempts to take n tokens at instant now, refilling first for
// the time elapsed since the previous call. It reports whether the
// take was granted; a denied take consumes nothing. Time never flows
// backward through the bucket: an out-of-order now (concurrent callers
// racing on the lock) refills nothing rather than draining the bucket.
func (b *TokenBucket) TakeAt(now time.Time, n float64) bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.last.IsZero() {
		b.last = now
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	if b.tokens < n {
		return false
	}
	b.tokens -= n
	return true
}

// Remaining reports the token count a take at instant now would see,
// without consuming anything. Tests assert refill math through it; the
// request path never calls it.
func (b *TokenBucket) Remaining(now time.Time) float64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	tokens := b.tokens
	if !b.last.IsZero() {
		if dt := now.Sub(b.last).Seconds(); dt > 0 {
			tokens += dt * b.rate
			if tokens > b.burst {
				tokens = b.burst
			}
		}
	}
	return tokens
}
