package gateway

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"finelb/internal/cluster"
	"finelb/internal/core"
	"finelb/internal/obs"
	"finelb/internal/transport"
)

// waitUntil polls cond every millisecond until it holds, failing the
// test after a bounded deadline.
func waitUntil(t *testing.T, cond func() bool, desc string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", desc)
		}
		time.Sleep(time.Millisecond)
	}
}

// fakeClock is the injected gateway clock: frozen until advanced, so
// token-bucket and TTL behavior in these tests is exact.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// testGateway is one booted front door: a small cluster, a gateway
// serving on the transport, and a client that dials through it.
type testGateway struct {
	cl  *cluster.Cluster
	gw  *Gateway
	hc  *http.Client
	url string
	clk *fakeClock
}

type testGatewayConfig struct {
	servers int
	dirTTL  time.Duration
	tenants []TenantConfig
	def     string
}

func startTestGateway(t *testing.T, tr transport.Transport, cfg testGatewayConfig) *testGateway {
	t.Helper()
	if cfg.servers == 0 {
		cfg.servers = 3
	}
	reg := obs.NewRegistry()
	cl, err := cluster.StartCluster(cluster.ExperimentConfig{
		Servers:   cfg.servers,
		Clients:   2,
		Policy:    core.NewRandom(),
		Transport: tr,
		SlowProb:  -1, // no contention-model delays: latencies stay test-friendly
		DirTTL:    cfg.dirTTL,
		Metrics:   reg,
		Seed:      1,
	})
	if err != nil {
		t.Fatalf("StartCluster: %v", err)
	}
	t.Cleanup(cl.Close)
	clk := newFakeClock()
	gw, err := New(Config{
		Backends:      cl.Clients,
		Tenants:       cfg.tenants,
		DefaultTenant: cfg.def,
		Registry:      reg,
		Now:           clk.now,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ln, err := tr.Listen()
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	if err := gw.Start(ln); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { _ = gw.Close() })
	return &testGateway{
		cl:  cl,
		gw:  gw,
		hc:  HTTPClient(tr, 10*time.Second),
		url: "http://" + gw.Addr(),
		clk: clk,
	}
}

// rawAccess performs one /access request without failing the test, so
// it is safe from helper goroutines.
func (tg *testGateway) rawAccess(tenant, session, query string) (int, string, AccessReply, error) {
	req, err := http.NewRequest(http.MethodPost, tg.url+"/access"+query, strings.NewReader("ping"))
	if err != nil {
		return 0, "", AccessReply{}, err
	}
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	if session != "" {
		req.Header.Set("X-Session", session)
	}
	resp, err := tg.hc.Do(req)
	if err != nil {
		return 0, "", AccessReply{}, err
	}
	defer resp.Body.Close()
	var reply AccessReply
	if resp.StatusCode == http.StatusOK {
		err = json.NewDecoder(resp.Body).Decode(&reply)
	} else {
		_, _ = io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode, resp.Header.Get("X-Gateway-Reject"), reply, err
}

func (tg *testGateway) access(t *testing.T, tenant, session, query string) (int, string, AccessReply) {
	t.Helper()
	status, cause, reply, err := tg.rawAccess(tenant, session, query)
	if err != nil {
		t.Fatalf("access (tenant %q session %q): %v", tenant, session, err)
	}
	return status, cause, reply
}

func TestGatewayEndToEnd(t *testing.T) {
	t.Run("mem", func(t *testing.T) {
		testEndToEnd(t, transport.NewMem(transport.MemConfig{Seed: 1}))
	})
	t.Run("net", func(t *testing.T) {
		testEndToEnd(t, transport.Net{})
	})
}

func testEndToEnd(t *testing.T, tr transport.Transport) {
	tg := startTestGateway(t, tr, testGatewayConfig{
		tenants: []TenantConfig{
			{Name: "paid", Sticky: true},
			{Name: "free"},
		},
		def: "paid",
	})

	resp, err := tg.hc.Get(tg.url + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}

	// A bare request lands on the default tenant and reaches a node
	// through the polling client.
	status, _, reply := tg.access(t, "", "", "")
	if status != http.StatusOK {
		t.Fatalf("access status = %d", status)
	}
	if reply.Tenant != "paid" {
		t.Fatalf("default tenant = %q, want paid", reply.Tenant)
	}
	if reply.Server < 0 || reply.Server >= 3 {
		t.Fatalf("server = %d, want 0..2", reply.Server)
	}

	// A session's second request is served by the node the first
	// pinned, and reports the affinity.
	_, _, first := tg.access(t, "paid", "alice", "")
	_, _, second := tg.access(t, "paid", "alice", "")
	if second.Server != first.Server {
		t.Fatalf("session moved: %d then %d", first.Server, second.Server)
	}
	if !second.Sticky || second.Violation {
		t.Fatalf("second session reply = %+v, want sticky non-violation", second)
	}

	// An unresolvable tenant is shed before it costs the cluster.
	status, cause, _ := tg.access(t, "nobody", "", "")
	if status != http.StatusForbidden || cause != RejectTenant {
		t.Fatalf("unknown tenant: status %d cause %q", status, cause)
	}

	// The gateway catalog and per-tenant series land on the shared
	// /metrics mux.
	resp, err = tg.hc.Get(tg.url + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{obs.MetricGatewayRequests, obs.MetricGatewayAdmitted} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
	snap := tg.gw.Registry().Snapshot()
	// The per-tenant series land in the same snapshot under derived
	// names (the JSON body escapes their quotes, so assert via the
	// snapshot rather than a substring).
	if _, ok := snap.Get(obs.TenantMetric(obs.MetricGatewayRequests, "paid")); !ok {
		t.Fatalf("snapshot missing per-tenant series for paid")
	}
	if got := snap.Value(obs.MetricGatewayAdmitted); got < 3 {
		t.Fatalf("admitted = %d, want >= 3", got)
	}
	if got := snap.Value(obs.MetricGatewayUnknownTenant); got != 1 {
		t.Fatalf("unknown-tenant count = %d, want 1", got)
	}
}

func TestGatewayRateLimit(t *testing.T) {
	tg := startTestGateway(t, transport.NewMem(transport.MemConfig{Seed: 2}), testGatewayConfig{
		tenants: []TenantConfig{{Name: "capped", RateLimit: 1}}, // burst defaults to 1
		def:     "capped",
	})
	// The clock is frozen: exactly the burst is admitted, then 429s.
	if status, _, _ := tg.access(t, "", "", ""); status != http.StatusOK {
		t.Fatalf("first request status = %d", status)
	}
	for i := 0; i < 3; i++ {
		status, cause, _ := tg.access(t, "", "", "")
		if status != http.StatusTooManyRequests || cause != RejectRate {
			t.Fatalf("over-limit request %d: status %d cause %q", i, status, cause)
		}
	}
	// Refill is driven by the injected clock, capped at the burst: two
	// seconds buy back one token, not two.
	tg.clk.advance(2 * time.Second)
	if status, _, _ := tg.access(t, "", "", ""); status != http.StatusOK {
		t.Fatalf("post-refill request status = %d", status)
	}
	if status, _, _ := tg.access(t, "", "", ""); status != http.StatusTooManyRequests {
		t.Fatalf("second post-refill request status = %d, want 429", status)
	}
	if got := tg.gw.Metrics().RejectedRate.Value(); got != 4 {
		t.Fatalf("rejected-rate counter = %d, want 4", got)
	}
}

func TestGatewayTenantIsolation(t *testing.T) {
	tg := startTestGateway(t, transport.NewMem(transport.MemConfig{Seed: 3}), testGatewayConfig{
		tenants: []TenantConfig{
			{Name: "heavy", MaxInflight: 1},
			{Name: "light"},
		},
	})
	// Saturate heavy's one admission slot with a slow access.
	type result struct {
		status int
		err    error
	}
	done := make(chan result, 1)
	go func() {
		status, _, _, err := tg.rawAccess("heavy", "", "?service_us=300000")
		done <- result{status, err}
	}()
	heavy := tg.gw.tenants["heavy"]
	waitUntil(t, func() bool { return heavy.inflight.Load() == 1 }, "heavy request in flight")

	// Heavy is at its cap: its next request is shed at admission...
	status, cause, _ := tg.access(t, "heavy", "", "")
	if status != http.StatusServiceUnavailable || cause != RejectAdmission {
		t.Fatalf("saturated heavy: status %d cause %q", status, cause)
	}
	// ...while light — its own limiter, its own slots — still gets in.
	if status, _, _ := tg.access(t, "light", "", ""); status != http.StatusOK {
		t.Fatalf("light during heavy saturation: status %d", status)
	}

	r := <-done
	if r.err != nil || r.status != http.StatusOK {
		t.Fatalf("slow heavy access: status %d err %v", r.status, r.err)
	}
	// The slot freed: heavy is admitted again.
	if status, _, _ := tg.access(t, "heavy", "", ""); status != http.StatusOK {
		t.Fatalf("heavy after release: status %d", status)
	}
	m := tg.gw.Metrics()
	if got := m.RejectedAdmission.Value(); got != 1 {
		t.Fatalf("rejected-admission counter = %d, want 1", got)
	}
}

func TestGatewayStickyViolationBudget(t *testing.T) {
	tg := startTestGateway(t, transport.NewMem(transport.MemConfig{Seed: 4}), testGatewayConfig{
		tenants: []TenantConfig{{
			Name:           "paid",
			Sticky:         true,
			StickyOverload: 3,
			ViolationRate:  1, // one discretionary violation per second...
			ViolationBurst: 2, // ...bursting to two
		}},
		def: "paid",
	})
	// Pin the session.
	status, _, reply := tg.access(t, "", "sess", "")
	if status != http.StatusOK || reply.Sticky || reply.Violation {
		t.Fatalf("pinning request: status %d reply %+v", status, reply)
	}
	pin := reply.Server

	// Keep reporting the pinned node overloaded. The frozen clock
	// grants exactly the two burst tokens: two discretionary
	// violations, then the session sticks and eats the delay.
	for i := 0; i < 5; i++ {
		tg.gw.loads.note(pin, 5)
		status, _, reply := tg.access(t, "", "sess", "")
		if status != http.StatusOK {
			t.Fatalf("request %d: status %d", i, status)
		}
		if i < 2 {
			if !reply.Violation || reply.Forced {
				t.Fatalf("request %d = %+v, want discretionary violation", i, reply)
			}
		} else {
			if !reply.Sticky || reply.Violation {
				t.Fatalf("request %d = %+v, want denied (sticky, no violation)", i, reply)
			}
			if reply.Server != pin {
				t.Fatalf("request %d moved to %d without budget", i, reply.Server)
			}
		}
		pin = reply.Server
	}
	m := tg.gw.Metrics()
	if v, f, d := m.StickyViolations.Value(), m.StickyForced.Value(), m.StickyDenied.Value(); v != 2 || f != 0 || d != 3 {
		t.Fatalf("violations=%d forced=%d denied=%d, want 2/0/3", v, f, d)
	}

	// One second of injected time refills one violation token.
	tg.clk.advance(time.Second)
	tg.gw.loads.note(pin, 5)
	if _, _, reply := tg.access(t, "", "sess", ""); !reply.Violation {
		t.Fatalf("post-refill request = %+v, want violation", reply)
	}
	if got := m.StickyViolations.Value(); got != 3 {
		t.Fatalf("violations after refill = %d, want 3", got)
	}
}

func TestGatewayStickyForcedMove(t *testing.T) {
	tg := startTestGateway(t, transport.NewMem(transport.MemConfig{Seed: 5}), testGatewayConfig{
		dirTTL: 300 * time.Millisecond, // crashed pins expire fast
		tenants: []TenantConfig{{
			Name:           "paid",
			Sticky:         true,
			StickyOverload: -1, // only a vanished node breaks affinity
		}},
		def: "paid",
	})
	_, _, reply := tg.access(t, "", "sess", "")
	pin := reply.Server

	// Crash the pinned node and wait for its soft state to expire out
	// of every backend's mapping table.
	tg.cl.Nodes[pin].Close()
	waitUntil(t, func() bool {
		for _, c := range tg.cl.Clients {
			if c.HasEndpoint(pin) {
				return false
			}
		}
		return true
	}, "crashed node to expire from mapping tables")

	status, _, reply := tg.access(t, "", "sess", "")
	if status != http.StatusOK {
		t.Fatalf("post-crash request: status %d", status)
	}
	if !reply.Violation || !reply.Forced {
		t.Fatalf("post-crash reply = %+v, want forced violation", reply)
	}
	if reply.Server == pin {
		t.Fatalf("post-crash request served by crashed node %d", pin)
	}
	// The session re-pins to the survivor.
	_, _, again := tg.access(t, "", "sess", "")
	if !again.Sticky || again.Server != reply.Server {
		t.Fatalf("re-pin reply = %+v, want sticky on %d", again, reply.Server)
	}
	m := tg.gw.Metrics()
	if v, f := m.StickyViolations.Value(), m.StickyForced.Value(); v != 1 || f != 1 {
		t.Fatalf("violations=%d forced=%d, want 1/1", v, f)
	}
}

func TestRunLoadGen(t *testing.T) {
	tr := transport.NewMem(transport.MemConfig{Seed: 6})
	tg := startTestGateway(t, tr, testGatewayConfig{
		tenants: []TenantConfig{
			{Name: "paid", Sticky: true},
			{Name: "free", RateLimit: 1}, // frozen clock: exactly one free request lands
		},
	})
	res, err := RunLoadGen(LoadGenConfig{
		URL:      tg.url,
		Client:   tg.hc,
		Rate:     500,
		Requests: 50,
		Tenants:  []string{"paid", "free"},
		Sessions: 4,
		Seed:     1,
	})
	if err != nil {
		t.Fatalf("RunLoadGen: %v", err)
	}
	if res.Sent != 50 {
		t.Fatalf("sent = %d, want 50", res.Sent)
	}
	if got := res.OK + res.RateLimited + res.RejectedAdmission + res.Overloads + res.Errors; got != res.Sent {
		t.Fatalf("outcomes sum to %d, sent %d: %s", got, res.Sent, res.Describe())
	}
	// 25 paid requests all land; the gateway clock is frozen, so free's
	// one-token bucket admits exactly one of its 25.
	if res.OK != 26 || res.RateLimited != 24 || res.Errors != 0 {
		t.Fatalf("unexpected outcome mix: %s", res.Describe())
	}
	// Session reuse produced sticky hits and no budget exists to spend.
	if res.Sticky == 0 || res.Violations != 0 {
		t.Fatalf("sticky=%d violations=%d, want >0 and 0: %s", res.Sticky, res.Violations, res.Describe())
	}
	if res.Latency.N() != res.OK {
		t.Fatalf("latency samples = %d, want %d", res.Latency.N(), res.OK)
	}

	// Bad configs are rejected up front.
	if _, err := RunLoadGen(LoadGenConfig{URL: tg.url, Rate: 0, Requests: 1}); err == nil {
		t.Fatal("RunLoadGen accepted rate 0")
	}
	if _, err := RunLoadGen(LoadGenConfig{URL: tg.url, Rate: 1, Requests: 0}); err == nil {
		t.Fatal("RunLoadGen accepted 0 requests")
	}
}
