// Package finelb is a Go reproduction of "Cluster Load Balancing for
// Fine-Grain Network Services" (Shen, Yang, Chu; IPPS/IPDPS 2002): the
// random-polling (power-of-d-choices) load-balancing policy family for
// services inside a cluster, together with the broadcast, random,
// round-robin, and IDEAL baselines, a discrete-event simulator, a
// real-socket Neptune-lite prototype, and drivers that regenerate every
// table and figure of the paper's evaluation.
//
// This file is the public facade: it re-exports the pieces a downstream
// user composes, while implementations live under internal/.
//
// # Quick start
//
// Simulate the paper's headline configuration — 16 servers at 90% load,
// fine-grain services, poll size 2:
//
//	w := finelb.FineGrain().ScaledTo(16, 0.9)
//	res, err := finelb.Simulate(finelb.SimConfig{
//		Servers: 16, Workload: w, Policy: finelb.NewPoll(2),
//	})
//	fmt.Println(res.MeanResponse())
//
// Or run the same cell on the real-socket prototype:
//
//	res, err := finelb.RunPrototype(finelb.PrototypeConfig{
//		Servers: 16, Workload: w, Policy: finelb.NewPoll(2),
//	})
//
// See examples/ for complete programs and cmd/repro for the experiment
// suite.
package finelb

import (
	"time"

	"finelb/internal/cluster"
	"finelb/internal/core"
	"finelb/internal/faults"
	"finelb/internal/simcluster"
	"finelb/internal/substrate"
	"finelb/internal/transport"
	"finelb/internal/workload"
)

// Policy is a load-balancing policy specification (random, round-robin,
// random polling with optional slow-poll discard, broadcast, or IDEAL).
type Policy = core.Policy

// Policy constructors.
var (
	// NewRandom returns the uniform random policy.
	NewRandom = core.NewRandom
	// NewRoundRobin returns the per-client round-robin policy.
	NewRoundRobin = core.NewRoundRobin
	// NewPoll returns the paper's random polling policy with poll size d.
	NewPoll = core.NewPoll
	// NewPollDiscard returns random polling with the slow-poll discard
	// optimization of §3.2.
	NewPollDiscard = core.NewPollDiscard
	// NewBroadcast returns the broadcast (server push) policy.
	NewBroadcast = core.NewBroadcast
	// NewIdeal returns the omniscient IDEAL reference policy.
	NewIdeal = core.NewIdeal
)

// Workload couples an inter-arrival distribution with a service-time
// distribution; scale it to a cluster size and load with ScaledTo.
type Workload = workload.Workload

// The paper's three evaluation workloads.
var (
	// PoissonExp returns the synthetic Poisson/Exp workload.
	PoissonExp = workload.PoissonExp
	// MediumGrain returns the Medium-Grain Teoma-like trace workload
	// (mean service 28.9 ms).
	MediumGrain = workload.MediumGrain
	// FineGrain returns the Fine-Grain Teoma-like trace workload
	// (mean service 2.22 ms).
	FineGrain = workload.FineGrain
	// PaperWorkloads returns all three in the paper's order.
	PaperWorkloads = workload.Paper
)

// Trace is a materialized access sequence with Table 1 statistics and
// file IO.
type Trace = workload.Trace

// ReadTrace parses a trace file written by Trace.Write.
var ReadTrace = workload.ReadTrace

// SimConfig configures a discrete-event simulation run (Figures 2-4).
type SimConfig = simcluster.Config

// SimResult is a simulation run's measurements.
type SimResult = simcluster.Result

// Simulate executes one simulated cluster experiment.
func Simulate(cfg SimConfig) (*SimResult, error) { return simcluster.Run(cfg) }

// PrototypeConfig configures a real-socket prototype run (Figure 6,
// Table 2).
type PrototypeConfig = cluster.ExperimentConfig

// PrototypeResult is a prototype run's measurements.
type PrototypeResult = cluster.ExperimentResult

// RunPrototype boots an in-process cluster over real UDP/TCP sockets
// and replays the workload against it.
func RunPrototype(cfg PrototypeConfig) (*PrototypeResult, error) {
	return cluster.RunExperiment(cfg)
}

// Cluster pieces for programs that want to compose a service cluster
// directly rather than run a canned experiment (see examples/).
type (
	// Directory is the soft-state service availability subsystem.
	Directory = cluster.Directory
	// Node is a prototype server node.
	Node = cluster.Node
	// NodeConfig configures a Node.
	NodeConfig = cluster.NodeConfig
	// Client is a prototype client node with the polling agent.
	Client = cluster.Client
	// ClientConfig configures a Client.
	ClientConfig = cluster.ClientConfig
	// Endpoint is one published service instance.
	Endpoint = cluster.Endpoint
	// IdealManager is the centralized load-index manager emulating IDEAL.
	IdealManager = cluster.IdealManager
)

// Cluster construction helpers.
var (
	// NewDirectory returns a soft-state directory with the given TTL
	// (0 = default).
	NewDirectory = cluster.NewDirectory
	// StartNode boots a server node on loopback addresses.
	StartNode = cluster.StartNode
	// NewClient builds a client node.
	NewClient = cluster.NewClient
	// StartIdealManager boots a centralized load-index manager.
	StartIdealManager = cluster.StartIdealManager
)

// DiscardThreshold is the §3.2 slow-poll discard threshold used by the
// paper's Table 2 (10 ms; see DESIGN.md for the OCR restoration).
const DiscardThreshold = 10 * time.Millisecond

// Transport layer: every prototype component (nodes, clients, the
// directory server, the IDEAL manager) exchanges messages through a
// Transport. The zero configuration uses real loopback sockets; an
// in-memory fabric swaps in for deterministic, file-descriptor-free
// runs (set PrototypeConfig.Transport, or ProtoSubstrate.Transport to
// "mem").
type (
	// Transport provides stream listeners and datagram endpoints.
	Transport = transport.Transport
	// NetTransport is the real-socket transport (loopback TCP/UDP).
	NetTransport = transport.Net
	// MemTransport is the in-process fabric: seedable latency, jitter,
	// and loss, no file descriptors.
	MemTransport = transport.Mem
	// MemTransportConfig configures a MemTransport fabric.
	MemTransportConfig = transport.MemConfig
)

// Transport construction helpers.
var (
	// NewMemTransport builds an in-memory fabric.
	NewMemTransport = transport.NewMem
	// TransportWithFaults wraps a transport so a fault schedule's link
	// rules (loss, latency) apply to its datagram traffic — the single
	// point where LinkRule replay happens.
	TransportWithFaults = transport.WithFaults
)

// Fault injection (§3.1 availability): a FaultSchedule describes node
// crashes, pause/resume pairs, and per-link loss/latency; pass it to
// SimConfig.Faults or PrototypeConfig.Faults and both substrates replay
// it deterministically from the same seed.
type (
	// FaultSchedule is a seedable schedule of node and link faults.
	FaultSchedule = faults.Schedule
	// FaultEvent is one timed node fault (crash, pause, or resume).
	FaultEvent = faults.NodeEvent
	// LinkRule degrades the poll path between client-server pairs with
	// probabilistic loss and added latency (-1 matches any index).
	LinkRule = faults.LinkRule
	// FaultKind distinguishes crash, pause, and resume events.
	FaultKind = faults.Kind
)

// Node fault kinds.
const (
	// Crash permanently kills a node: in-flight and queued work fails
	// and its soft state expires at the directory TTL.
	Crash = faults.Crash
	// Pause freezes a node: accepted work stalls but is not lost.
	Pause = faults.Pause
	// Resume unfreezes a paused node and re-publishes it immediately.
	Resume = faults.Resume
)

// DegradedDemo returns the canned degraded-mode schedule used by the
// "degraded" experiment: kill the first kills of n nodes at the given
// offset, with uniform poll loss on every link.
var DegradedDemo = faults.DegradedDemo

// Substrate abstraction: one RunSpec executes on either the simulator
// or the prototype, producing a RunResult with the measurements both
// share — this is how experiment drivers run the same sweep on both
// (see internal/substrate).
type (
	// Substrate executes substrate-independent runs.
	Substrate = substrate.Substrate
	// RunSpec describes one run in substrate-independent terms.
	RunSpec = substrate.RunSpec
	// RunResult carries the measurements common to both substrates.
	RunResult = substrate.RunResult
	// SimSubstrate is the discrete-event simulator substrate.
	SimSubstrate = substrate.Sim
	// ProtoSubstrate is the real-socket prototype substrate.
	ProtoSubstrate = substrate.Proto
)
