// Replication: the Neptune substrate beneath the paper.
//
// The load-balancing study (§3.1) runs on Neptune, the authors'
// replication infrastructure for partitionable cluster services. This
// example exercises the reconstructed Neptune layer end to end:
//
//  1. a replicated word-translation service (commutative writes —
//     Neptune consistency level 1) learns a vocabulary while balanced
//     queries translate words;
//  2. a partitioned key/value store with primary-ordered writes
//     (level 2) takes conflicting writes that all replicas resolve
//     identically;
//  3. a fresh replica joins, resyncs a snapshot, and serves.
//
// Run with:
//
//	go run ./examples/replication
package main

import (
	"fmt"
	"log"

	"finelb"
	"finelb/internal/neptune"
)

func main() {
	dir := finelb.NewDirectory(0)

	// --- 1. Replicated word map, commutative writes. --------------------
	var wordServers []*neptune.Server
	for i := 0; i < 3; i++ {
		s, err := neptune.StartServer(neptune.ServerConfig{
			NodeID: i, Service: "wordmap", Partitions: []uint32{0},
			Factory:   func(uint32) neptune.StateMachine { return neptune.NewWordMap() },
			Level:     neptune.Commutative,
			Directory: dir, Seed: uint64(i),
		})
		if err != nil {
			log.Fatal(err)
		}
		defer s.Close()
		wordServers = append(wordServers, s)
	}
	words, err := neptune.NewClient(neptune.ClientConfig{
		Directory: dir, Service: "wordmap", Level: neptune.Commutative,
		ReadPolicy: finelb.NewPollDiscard(2, finelb.DiscardThreshold), Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer words.Close()

	vocabulary := []string{"cluster", "load", "balancing", "fine", "grain"}
	for _, w := range vocabulary {
		if _, err := words.Write(0, "learn", []byte(w), 0); err != nil {
			log.Fatal(err)
		}
	}
	for _, w := range vocabulary[:2] {
		id, err := words.Query(0, "translate", []byte(w), 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("translate(%-10q) -> %x\n", w, id)
	}
	count, _ := words.Query(0, "count", nil, 0)
	n, _ := neptune.DecodeInt64(count)
	fmt.Printf("vocabulary size on a balanced replica: %d (writes reached all %d replicas)\n\n",
		n, len(wordServers))

	// --- 2. Partitioned KV store, primary-ordered writes. ---------------
	kvFactory := func(uint32) neptune.StateMachine { return neptune.NewKVStore() }
	var kvServers []*neptune.Server
	for i := 0; i < 3; i++ {
		s, err := neptune.StartServer(neptune.ServerConfig{
			NodeID: 10 + i, Service: "kv", Partitions: []uint32{0, 1},
			Factory: kvFactory, Level: neptune.PrimaryOrdered,
			Directory: dir, Seed: uint64(10 + i),
		})
		if err != nil {
			log.Fatal(err)
		}
		defer s.Close()
		kvServers = append(kvServers, s)
	}
	kv, err := neptune.NewClient(neptune.ClientConfig{
		Directory: dir, Service: "kv", Level: neptune.PrimaryOrdered,
		ReadPolicy: finelb.NewPoll(2), Seed: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer kv.Close()

	// Conflicting writes to the same key: the primary serializes them.
	for i, v := range []string{"red", "green", "blue"} {
		if _, err := kv.Write(uint32(i%2), "put", neptune.EncodeKV("color", []byte(v)), 0); err != nil {
			log.Fatal(err)
		}
	}
	for part := uint32(0); part < 2; part++ {
		v, err := kv.Query(part, "get", []byte("color"), 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("kv partition %d: color = %s\n", part, v)
	}

	// --- 3. A replica joins and resyncs. ---------------------------------
	joined, err := neptune.StartServer(neptune.ServerConfig{
		NodeID: 20, Service: "kv", Partitions: []uint32{0, 1},
		Factory: kvFactory, Level: neptune.PrimaryOrdered,
		Directory: dir, Seed: 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer joined.Close()
	if err := joined.ResyncFrom(kvServers[0].Endpoint()); err != nil {
		log.Fatal(err)
	}
	seq, _ := joined.AppliedSeq(0)
	fmt.Printf("\nnew replica (node 20) resynced partition 0 at seq %d and now serves reads\n", seq)
}
