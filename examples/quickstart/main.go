// Quickstart: the paper's headline result in ~30 lines.
//
// It simulates 16 servers at 90% load under the Fine-Grain workload and
// compares the random policy, random polling with poll size 2, and the
// IDEAL oracle — then repeats poll-2 on the real-socket prototype.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"finelb"
)

func main() {
	w := finelb.FineGrain().ScaledTo(16, 0.9)

	fmt.Println("simulation (16 servers, 90% busy, Fine-Grain trace):")
	for _, policy := range []finelb.Policy{
		finelb.NewRandom(), finelb.NewPoll(2), finelb.NewIdeal(),
	} {
		res, err := finelb.Simulate(finelb.SimConfig{
			Servers: 16, Workload: w, Policy: policy,
			Accesses: 60000, Seed: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s mean %7.3f ms   p95 %7.3f ms\n",
			policy, res.Response.Mean()*1e3, res.Response.Percentile(0.95)*1e3)
	}

	fmt.Println("\nprototype (real UDP/TCP on loopback, same cell):")
	res, err := finelb.RunPrototype(finelb.PrototypeConfig{
		Servers: 16, Clients: 6, Workload: w,
		Policy:   finelb.NewPoll(2),
		Accesses: 8000, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-8s mean %7.3f ms   p95 %7.3f ms   mean poll %.3f ms\n",
		"poll 2", res.Response.Mean()*1e3, res.Response.Percentile(0.95)*1e3,
		res.PollTime.Mean()*1e3)

	fmt.Println("\nThe poll-2 policy sits near IDEAL while random queues up —")
	fmt.Println("the paper's conclusion 1: random polling suits fine-grain services.")
}
