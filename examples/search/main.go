// Search-engine scenario: the workload that motivated the paper.
//
// Teoma's cluster ran fine-grain internal services such as the
// translation between query words and their internal representations —
// a couple of milliseconds per lookup, thousands per second at peak.
// This example boots a live mini-cluster of "wordmap" translation
// servers, then issues a burst of keyword translations through two
// client nodes: one using pure random dispatch, one using the paper's
// poll-2 policy with the slow-poll discard optimization, and prints the
// latency each strategy achieved on identical keyword streams.
//
// Run with:
//
//	go run ./examples/search
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"finelb"
	"finelb/internal/stats"
)

const (
	servers  = 8
	queries  = 3000
	keywords = "anchorage,boston,chicago,denver,elpaso,fresno,galveston,houston"
)

func main() {
	dir := finelb.NewDirectory(0)
	var nodes []*finelb.Node
	for i := 0; i < servers; i++ {
		n, err := finelb.StartNode(finelb.NodeConfig{
			ID: i, Service: "wordmap", Directory: dir, Seed: uint64(i),
		})
		if err != nil {
			log.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()

	policies := []finelb.Policy{
		finelb.NewRandom(),
		finelb.NewPollDiscard(2, finelb.DiscardThreshold),
	}
	for _, policy := range policies {
		lat, errs := drive(dir, policy)
		fmt.Printf("%-24v mean %7.3f ms   p95 %7.3f ms   p99 %7.3f ms   errors %d\n",
			policy, lat.Mean()*1e3, lat.Percentile(0.95)*1e3, lat.Percentile(0.99)*1e3, errs)
	}
	fmt.Println("\nEach query emulates a ~2.2 ms keyword translation; at high load the")
	fmt.Println("polling client avoids momentary hot spots that random dispatch hits.")
}

// drive issues the keyword stream open-loop at ~90% cluster load
// through a client using the given policy and returns the latency
// summary.
func drive(dir *finelb.Directory, policy finelb.Policy) (*stats.Summary, int) {
	client, err := finelb.NewClient(finelb.ClientConfig{
		Directory: dir, Service: "wordmap", Policy: policy, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	words := splitKeywords()
	rng := stats.NewRNG(7)
	lat := stats.NewSummary(true)
	var mu sync.Mutex
	var wg sync.WaitGroup
	errs := 0

	// ~90% of 8 servers with 2.22 ms lookups => ~3240 queries/s.
	next := time.Now()
	gapSeconds := 2.22e-3 / 0.9 / float64(servers)
	meanGap := time.Duration(gapSeconds * float64(time.Second))
	for i := 0; i < queries; i++ {
		next = next.Add(time.Duration(float64(meanGap) * rng.ExpFloat64()))
		if wait := time.Until(next); wait > 0 {
			time.Sleep(wait)
		}
		word := words[i%len(words)]
		arrive := next
		svc := uint32(2220 * rng.ExpFloat64()) // emulated lookup cost in µs
		wg.Add(1)
		go func() {
			defer wg.Done()
			info, err := client.Access(svc, []byte(word))
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs++
				return
			}
			if string(info.Resp.Payload) != word { // the service echoes its input
				errs++
				return
			}
			lat.Add(time.Since(arrive).Seconds())
		}()
	}
	wg.Wait()
	return lat, errs
}

func splitKeywords() []string {
	var out []string
	start := 0
	for i := 0; i <= len(keywords); i++ {
		if i == len(keywords) || keywords[i] == ',' {
			out = append(out, keywords[start:i])
			start = i + 1
		}
	}
	return out
}
