// Photo-album scenario: the partitioned, aggregated service cluster of
// the paper's Figure 1.
//
// The cluster hosts two services:
//
//   - "album": the photo-album front service, fully replicated on
//     every node;
//   - "imagestore": the internal image store, partitioned into two
//     partition groups (partitions 0-9 and 10-19), each group
//     replicated on half the nodes.
//
// Fetching one album page aggregates three internal accesses: one
// album lookup plus one image fetch from each partition group. Every
// internal access is load-balanced independently with the random
// polling policy, exactly the flat client/server architecture of §3.1:
// any node may act as client and server.
//
// Run with:
//
//	go run ./examples/photoalbum
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"finelb"
	"finelb/internal/stats"
)

const (
	albumNodes = 4
	storeNodes = 4 // two per partition group
	pages      = 400
)

func main() {
	dir := finelb.NewDirectory(0)
	var nodes []*finelb.Node
	start := func(cfg finelb.NodeConfig) {
		cfg.Directory = dir
		n, err := finelb.StartNode(cfg)
		if err != nil {
			log.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	// Album service: replicated everywhere, no partitions.
	for i := 0; i < albumNodes; i++ {
		start(finelb.NodeConfig{ID: i, Service: "album", Seed: uint64(i)})
	}
	// Image store: partition group A (0-9) and group B (10-19).
	groupA := []uint32{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	groupB := []uint32{10, 11, 12, 13, 14, 15, 16, 17, 18, 19}
	for i := 0; i < storeNodes; i++ {
		parts := groupA
		if i >= storeNodes/2 {
			parts = groupB
		}
		start(finelb.NodeConfig{
			ID: albumNodes + i, Service: "imagestore", Partitions: parts,
			Seed: uint64(100 + i),
		})
	}
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()

	// One balanced client per (service, partition group), as a gateway
	// node would hold.
	policy := finelb.NewPollDiscard(2, finelb.DiscardThreshold)
	album := mustClient(dir, "album", 0, policy, 1)
	storeA := mustClient(dir, "imagestore", 3, policy, 2)  // partition 3 lives in group A
	storeB := mustClient(dir, "imagestore", 12, policy, 3) // partition 12 lives in group B
	defer album.Close()
	defer storeA.Close()
	defer storeB.Close()

	// Verify the availability subsystem partitioned correctly.
	fmt.Printf("album replicas: %d, group-A replicas: %d, group-B replicas: %d\n",
		len(album.Endpoints()), len(storeA.Endpoints()), len(storeB.Endpoints()))

	rng := stats.NewRNG(5)
	lat := stats.NewSummary(true)
	var mu sync.Mutex
	var wg sync.WaitGroup
	errs := 0
	for i := 0; i < pages; i++ {
		time.Sleep(time.Duration(4e6 * rng.ExpFloat64())) // ~250 pages/s offered
		wg.Add(1)
		go func() {
			defer wg.Done()
			t0 := time.Now()
			// Aggregate: album metadata + one image from each group, the
			// two image fetches in parallel.
			if _, err := album.Access(uint32(1000*rng.ExpFloat64()), nil); err != nil {
				mu.Lock()
				errs++
				mu.Unlock()
				return
			}
			var iwg sync.WaitGroup
			var ierr bool
			for _, c := range []*finelb.Client{storeA, storeB} {
				c := c
				iwg.Add(1)
				go func() {
					defer iwg.Done()
					if _, err := c.Access(uint32(2500*rng.ExpFloat64()), nil); err != nil {
						ierr = true
					}
				}()
			}
			iwg.Wait()
			mu.Lock()
			defer mu.Unlock()
			if ierr {
				errs++
				return
			}
			lat.Add(time.Since(t0).Seconds())
		}()
	}
	wg.Wait()

	fmt.Printf("album pages  %d ok, %d errors\n", lat.N(), errs)
	fmt.Printf("page latency mean %.3f ms   p95 %.3f ms   p99 %.3f ms\n",
		lat.Mean()*1e3, lat.Percentile(0.95)*1e3, lat.Percentile(0.99)*1e3)
	fmt.Println("\nEach page aggregated three independently load-balanced internal")
	fmt.Println("accesses across a partitioned, replicated service cluster (Figure 1).")
}

func mustClient(dir *finelb.Directory, service string, partition uint32, p finelb.Policy, seed uint64) *finelb.Client {
	c, err := finelb.NewClient(finelb.ClientConfig{
		Directory: dir, Service: service, Partition: partition, Policy: p, Seed: seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	return c
}
