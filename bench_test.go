package finelb_test

// One testing.B benchmark per table and figure of the paper (plus the
// ablations), each running a reduced-scale version of the same driver
// that cmd/repro runs at full fidelity. `go test -bench=.` therefore
// regenerates every artifact's machinery and reports its cost; the
// tables themselves are printed once per benchmark (b.N iterations
// reuse fresh seeds so the work is not cached away).

import (
	"fmt"
	"os"
	"testing"
	"time"

	"finelb/internal/experiments"
)

// benchExperiment runs one experiment driver at quick scale b.N times,
// printing the resulting table on the first iteration. When the
// FINELB_BENCH_DIR environment variable names a directory, the first
// iteration also drops a machine-readable BENCH_<id>.json record there
// (CI uploads these as artifacts).
func benchExperiment(b *testing.B, id string) {
	run, err := experiments.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		opts := experiments.Options{Quick: true, Seed: uint64(i + 1)}
		start := time.Now()
		tbl, err := run(opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			if dir := os.Getenv("FINELB_BENCH_DIR"); dir != "" {
				rec := experiments.NewBenchRecord(id, opts, tbl, time.Since(start))
				if err := experiments.WriteBenchRecord(dir, rec); err != nil {
					b.Fatal(err)
				}
			}
			if testing.Verbose() {
				fmt.Print(tbl.String())
			}
		}
	}
}

// BenchmarkTable1 regenerates Table 1 (trace statistics).
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkFigure2 regenerates Figure 2 (load-index inaccuracy vs delay).
func BenchmarkFigure2(b *testing.B) { benchExperiment(b, "figure2") }

// BenchmarkFigure3 regenerates Figure 3 (broadcast frequency sweep).
func BenchmarkFigure3(b *testing.B) { benchExperiment(b, "figure3") }

// BenchmarkFigure4 regenerates Figure 4 (poll-size sweep, simulation).
func BenchmarkFigure4(b *testing.B) { benchExperiment(b, "figure4") }

// BenchmarkFigure6 regenerates Figure 6 (poll-size sweep, prototype).
func BenchmarkFigure6(b *testing.B) { benchExperiment(b, "figure6") }

// BenchmarkFigure6Mem regenerates Figure 6 over the in-memory
// transport (no sockets).
func BenchmarkFigure6Mem(b *testing.B) { benchExperiment(b, "figure6mem") }

// BenchmarkTable2 regenerates Table 2 (discarding slow-responding polls).
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkUpperbound regenerates E1 (Equation 1 validation).
func BenchmarkUpperbound(b *testing.B) { benchExperiment(b, "upperbound") }

// BenchmarkPollProfile regenerates P1 (the §3.2 poll-latency profile).
func BenchmarkPollProfile(b *testing.B) { benchExperiment(b, "pollprofile") }

// BenchmarkFlocking regenerates ablation A1.
func BenchmarkFlocking(b *testing.B) { benchExperiment(b, "flocking") }

// BenchmarkSyncAblation regenerates ablation A2.
func BenchmarkSyncAblation(b *testing.B) { benchExperiment(b, "syncablation") }

// BenchmarkMessages regenerates ablation A3 (message-overhead scaling).
func BenchmarkMessages(b *testing.B) { benchExperiment(b, "messages") }
