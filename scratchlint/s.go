package scratchlint

import "sync"

type S struct {
	//lint:guards n
	mu sync.Mutex
	n  int
}

func (s *S) Bad(cond bool) {
	s.mu.Lock()
	if cond {
		defer s.mu.Unlock()
		s.n++
		return
	}
	s.n = 2
	// lock leaked here: no unlock on this path
}
