package main

import (
	"os"
	"path/filepath"
	"testing"

	"finelb/internal/lint"
	"finelb/internal/lint/analysis"
)

// TestAnalyzersRegistered is the multichecker smoke test: every suite
// analyzer is present, uniquely named, documented, and runnable.
func TestAnalyzersRegistered(t *testing.T) {
	analyzers := lint.Analyzers()
	want := map[string]bool{
		"detclock":   false,
		"obscatalog": false,
		"closecheck": false,
		"noalloc":    false,
		"bufown":     false,
		"lockcheck":  false,
	}
	names := make(map[string]bool)
	for _, a := range analyzers {
		if a.Name == "" {
			t.Fatalf("analyzer with empty name registered")
		}
		if names[a.Name] {
			t.Errorf("analyzer %s registered twice", a.Name)
		}
		names[a.Name] = true
		if a.Doc == "" {
			t.Errorf("analyzer %s has no documentation", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %s has no Run function", a.Name)
		}
		if _, ok := want[a.Name]; ok {
			want[a.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("suite is missing the %s analyzer", name)
		}
	}
	if name := analysis.DirectiveAnalyzer; names[name] {
		t.Errorf("%s is reserved for the driver and may not be a registered analyzer", name)
	}
}

// TestTreeIsClean runs the full suite over the repository, making the
// determinism/catalog/shutdown invariants part of the ordinary test
// gate: `go test ./...` fails the moment a violation lands, CI or not.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-tree analysis is the long gate; finelbvet runs it in CI")
	}
	pkgs, err := analysis.Load(moduleRoot(t), "./...")
	if err != nil {
		t.Fatalf("loading repository packages: %v", err)
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("%s: %v", pkg.ImportPath, terr)
		}
	}
	res, err := analysis.Run(lint.Analyzers(), pkgs)
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range res.Diagnostics {
		t.Errorf("%s: %s: %s", res.Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}
