// finelbvet is the repository's vet: it runs the stock `go vet` passes
// plus the finelb-specific analyzer suite (bufown, closecheck,
// detclock, lockcheck, noalloc, obscatalog) over the given package
// patterns and exits nonzero on any finding. CI runs it as a blocking
// gate; locally:
//
//	go run ./cmd/finelbvet ./...
//
// Flags:
//
//	-novet    skip the stock `go vet` passes (custom analyzers only)
//	-list     print the registered analyzers and exit
//	-dir DIR  run as if invoked from DIR
//
// Findings can be suppressed at the offending line (or the line above
// it) with an annotated directive, which must name the analyzer and a
// reason:
//
//	//lint:allow detclock replays schedules on the prototype's wall clock by design
//
// A bare or reasonless `//lint:allow` suppresses nothing and is itself
// reported. The suppression policy is documented in DESIGN.md §8.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"

	"finelb/internal/lint"
	"finelb/internal/lint/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("finelbvet", flag.ExitOnError)
	noVet := fs.Bool("novet", false, "skip the stock `go vet` passes")
	list := fs.Bool("list", false, "print the registered analyzers and exit")
	dir := fs.String("dir", "", "run as if invoked from this directory")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: finelbvet [flags] [package patterns]\n\n")
		fmt.Fprintf(fs.Output(), "Runs go vet plus the finelb analyzer suite (default patterns: ./...).\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	exit := 0
	if !*noVet {
		vet := exec.Command("go", append([]string{"vet"}, patterns...)...)
		vet.Dir = *dir
		vet.Stdout = os.Stdout
		vet.Stderr = os.Stderr
		if err := vet.Run(); err != nil {
			if _, ok := err.(*exec.ExitError); !ok {
				fmt.Fprintf(os.Stderr, "finelbvet: go vet: %v\n", err)
				return 2
			}
			exit = 1
		}
	}

	pkgs, err := analysis.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "finelbvet: %v\n", err)
		return 2
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "finelbvet: %s: %v\n", pkg.ImportPath, terr)
			exit = 2
		}
	}
	if exit == 2 {
		return 2
	}

	res, err := analysis.Run(lint.Analyzers(), pkgs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "finelbvet: %v\n", err)
		return 2
	}
	for _, d := range res.Diagnostics {
		fmt.Printf("%s: %s: %s\n", res.Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(res.Diagnostics) > 0 {
		return 1
	}
	return exit
}
