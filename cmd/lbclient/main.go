// Command lbclient drives load against lbnode processes (or any
// prototype nodes) given their printed address lines, using a chosen
// load-balancing policy, and reports response-time statistics.
//
// Usage:
//
//	lbnode -n 4 > nodes.txt &
//	lbclient -nodes nodes.txt -policy poll -d 2 -rate 200 -duration 10s
//
// Each line of the nodes file is "<id> <access addr> <load addr>" as
// printed by lbnode.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"finelb/internal/cluster"
	"finelb/internal/core"
	"finelb/internal/stats"
)

func parseNodes(path string) ([]cluster.Endpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var eps []cluster.Endpoint
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("bad node line %q", line)
		}
		id, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("bad node id in %q", line)
		}
		eps = append(eps, cluster.Endpoint{
			NodeID: id, Service: "translate",
			AccessAddr: fields[1], LoadAddr: fields[2],
		})
	}
	return eps, sc.Err()
}

func main() {
	nodesPath := flag.String("nodes", "", "file of node address lines from lbnode")
	dirAddr := flag.String("dir", "", "lbdir address for dynamic discovery (alternative to -nodes)")
	pname := flag.String("policy", "poll", "random, rr, poll, or ideal")
	d := flag.Int("d", 2, "poll size")
	discard := flag.Duration("discard", 0, "slow-poll discard threshold (0 = off)")
	rate := flag.Float64("rate", 100, "aggregate accesses per second")
	duration := flag.Duration("duration", 5*time.Second, "how long to generate load")
	serviceMs := flag.Float64("service", 2.22, "mean service demand in ms (exponential)")
	mgr := flag.String("manager", "", "ideal-manager address (policy=ideal; start one with lbmanager)")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	if *nodesPath == "" && *dirAddr == "" {
		fmt.Fprintln(os.Stderr, "lbclient: one of -nodes or -dir is required")
		os.Exit(2)
	}
	var eps []cluster.Endpoint
	var remote *cluster.RemoteDirectory
	if *dirAddr != "" {
		var err error
		remote, err = cluster.DialDirectory(nil, *dirAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lbclient:", err)
			os.Exit(1)
		}
		defer remote.Close()
	} else {
		var err error
		eps, err = parseNodes(*nodesPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lbclient:", err)
			os.Exit(1)
		}
		if len(eps) == 0 {
			fmt.Fprintln(os.Stderr, "lbclient: no nodes")
			os.Exit(1)
		}
	}

	var p core.Policy
	switch *pname {
	case "random":
		p = core.NewRandom()
	case "rr":
		p = core.NewRoundRobin()
	case "poll":
		if *discard > 0 {
			p = core.NewPollDiscard(*d, *discard)
		} else {
			p = core.NewPoll(*d)
		}
	case "ideal":
		p = core.NewIdeal()
	default:
		fmt.Fprintf(os.Stderr, "lbclient: unknown policy %q\n", *pname)
		os.Exit(2)
	}

	c, err := cluster.NewClient(cluster.ClientConfig{
		Service: "translate", Policy: p,
		StaticEndpoints: eps, RemoteDir: remote, ManagerAddr: *mgr, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbclient:", err)
		os.Exit(1)
	}
	defer c.Close()

	rng := stats.NewRNG(*seed)
	var mu sync.Mutex
	resp := stats.NewSummary(true)
	poll := stats.NewSummary(false)
	var errs int64
	var wg sync.WaitGroup

	end := time.Now().Add(*duration)
	next := time.Now()
	meanInterval := time.Duration(float64(time.Second) / *rate)
	for time.Now().Before(end) {
		// Poisson arrivals at the requested rate.
		next = next.Add(time.Duration(float64(meanInterval) * rng.ExpFloat64()))
		if wait := time.Until(next); wait > 0 {
			time.Sleep(wait)
		}
		arrival := next
		svcUs := uint32(*serviceMs * 1e3 * rng.ExpFloat64())
		wg.Add(1)
		go func() {
			defer wg.Done()
			info, err := c.Access(svcUs, nil)
			elapsed := time.Since(arrival)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs++
				return
			}
			resp.Add(elapsed.Seconds())
			if info.PollTime > 0 {
				poll.Add(info.PollTime.Seconds())
			}
		}()
	}
	wg.Wait()

	fmt.Printf("policy      %s against %d nodes at %.0f/s for %v\n", p, len(eps), *rate, *duration)
	if resp.N() == 0 {
		fmt.Println("no successful accesses")
		os.Exit(1)
	}
	fmt.Printf("accesses    %d ok, %d errors\n", resp.N(), errs)
	fmt.Printf("response    mean %.3fms  p50 %.3fms  p95 %.3fms  p99 %.3fms\n",
		resp.Mean()*1e3, resp.Percentile(0.5)*1e3, resp.Percentile(0.95)*1e3, resp.Percentile(0.99)*1e3)
	if poll.N() > 0 {
		fmt.Printf("polling     mean %.3fms  max %.3fms\n", poll.Mean()*1e3, poll.Max()*1e3)
	}
}
