// Command lbnode runs standalone prototype server nodes and prints
// their access/load addresses, one pair per line, so lbclient (or any
// other process) can drive them. It serves until interrupted.
//
// Usage:
//
//	lbnode [-n 4] [-service translate] [-workers 1] [-spin]
//	       [-slowprob 0.15] [-seed 1] [-http :0] [-pprof] [-grace 3s]
//
// The first SIGINT/SIGTERM drains: heartbeats stop, directory entries
// are withdrawn, and the nodes keep serving for the -grace window so
// in-flight work completes. A second signal (or the window expiring)
// shuts down.
//
// Output format (stdout), one line per node:
//
//	<id> <access tcp addr> <load udp addr>
//
// With -http the process serves the shared obs metric catalog
// (aggregated across its nodes) at /metrics and, with -pprof, the
// net/http/pprof handlers under /debug/pprof/.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"finelb/internal/cluster"
	"finelb/internal/obs"
)

func main() {
	n := flag.Int("n", 4, "number of server nodes to run in this process")
	service := flag.String("service", "translate", "service name to host")
	workers := flag.Int("workers", 1, "worker pool size per node")
	spin := flag.Bool("spin", false, "burn CPU for service time instead of sleeping")
	slowProb := flag.Float64("slowprob", cluster.DefaultSlowProb, "busy-node slow-answer probability (negative disables)")
	dirAddr := flag.String("dir", "", "lbdir address to publish soft state to (optional)")
	httpAddr := flag.String("http", "", "serve /metrics (JSON obs snapshot) on this address; empty disables")
	pprofOn := flag.Bool("pprof", false, "with -http, also expose /debug/pprof/ handlers")
	seed := flag.Uint64("seed", 1, "random seed")
	grace := flag.Duration("grace", 3*time.Second, "drain window after the first signal (second signal exits immediately)")
	flag.Parse()

	if *n <= 0 {
		fmt.Fprintln(os.Stderr, "lbnode: -n must be positive")
		os.Exit(2)
	}

	var remote *cluster.RemoteDirectory
	if *dirAddr != "" {
		var err error
		remote, err = cluster.DialDirectory(nil, *dirAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lbnode:", err)
			os.Exit(1)
		}
		defer remote.Close()
	}

	// All nodes in this process share one registry, so /metrics shows
	// the process-wide view (per-node detail stays on Node.Stats).
	reg := obs.NewRegistry()
	rm := obs.NewRunMetrics(reg)
	if *httpAddr != "" {
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lbnode:", err)
			os.Exit(1)
		}
		defer ln.Close()
		go http.Serve(ln, obs.NewMux(reg, nil, *pprofOn))
		fmt.Fprintf(os.Stderr, "lbnode: metrics at http://%s/metrics\n", ln.Addr())
	} else if *pprofOn {
		fmt.Fprintln(os.Stderr, "lbnode: -pprof requires -http")
		os.Exit(2)
	}

	nodes := make([]*cluster.Node, 0, *n)
	for i := 0; i < *n; i++ {
		node, err := cluster.StartNode(cluster.NodeConfig{
			ID:        i,
			Service:   *service,
			Workers:   *workers,
			Spin:      *spin,
			SlowProb:  *slowProb,
			RemoteDir: remote,
			Metrics:   rm,
			Seed:      *seed + uint64(i)*7919,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "lbnode:", err)
			os.Exit(1)
		}
		nodes = append(nodes, node)
		fmt.Printf("%d %s %s\n", i, node.AccessAddr(), node.LoadAddr())
	}
	fmt.Fprintf(os.Stderr, "lbnode: %d node(s) serving %q; Ctrl-C to drain, twice to stop\n", *n, *service)

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	// First signal: graceful drain. Heartbeats stop and directory
	// entries are withdrawn (remote soft state expires on its TTL), but
	// every node keeps serving through the grace window so in-flight and
	// freshly routed work completes. A second signal cuts the window
	// short.
	for _, node := range nodes {
		node.Drain()
	}
	fmt.Fprintf(os.Stderr, "lbnode: draining %d node(s) for up to %v; signal again to exit now\n", *n, *grace)
	select {
	case <-sig:
	case <-time.After(*grace):
	}
	for _, node := range nodes {
		node.Close()
	}
	for i, node := range nodes {
		st := node.Stats()
		fmt.Fprintf(os.Stderr, "node %d: served=%d overloads=%d inquiries=%d slow=%d\n",
			i, st.Served, st.Overloads, st.Inquiries, st.SlowPaths)
	}
}
