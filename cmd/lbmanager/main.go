// Command lbmanager runs a standalone centralized load-index manager,
// the §4 IDEAL emulation, for use with lbclient -policy ideal. It
// prints its address on stdout and serves until interrupted.
//
// Usage:
//
//	lbmanager -n 4
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"finelb/internal/cluster"
)

func main() {
	n := flag.Int("n", 4, "number of servers the manager tracks (must match the node count and ordering)")
	seed := flag.Uint64("seed", 1, "random seed for tie-breaking")
	flag.Parse()

	m, err := cluster.StartIdealManager(nil, *n, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbmanager:", err)
		os.Exit(1)
	}
	fmt.Println(m.Addr())
	fmt.Fprintf(os.Stderr, "lbmanager: tracking %d servers; Ctrl-C to stop\n", *n)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintf(os.Stderr, "lbmanager: final counts %v\n", m.Counts())
	m.Close()
}
