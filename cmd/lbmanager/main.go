// Command lbmanager runs a standalone centralized load-index manager,
// the §4 IDEAL emulation, for use with lbclient -policy ideal. It
// prints its address on stdout and serves until interrupted.
//
// Usage:
//
//	lbmanager -n 4 [-http :0] [-pprof] [-grace 3s]
//
// With -http the manager serves its protocol counters at /metrics
// (refreshed at scrape time from the manager's own state) and, with
// -pprof, the net/http/pprof handlers under /debug/pprof/.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"finelb/internal/cluster"
	"finelb/internal/obs"
)

func main() {
	n := flag.Int("n", 4, "number of servers the manager tracks (must match the node count and ordering)")
	seed := flag.Uint64("seed", 1, "random seed for tie-breaking")
	httpAddr := flag.String("http", "", "serve /metrics (JSON obs snapshot) on this address; empty disables")
	pprofOn := flag.Bool("pprof", false, "with -http, also expose /debug/pprof/ handlers")
	grace := flag.Duration("grace", 3*time.Second, "drain window after the first signal: serve until outstanding acquisitions release (second signal exits immediately)")
	flag.Parse()

	m, err := cluster.StartIdealManager(nil, *n, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbmanager:", err)
		os.Exit(1)
	}
	fmt.Println(m.Addr())
	fmt.Fprintf(os.Stderr, "lbmanager: tracking %d servers; Ctrl-C to stop\n", *n)

	if *httpAddr != "" {
		// The manager keeps its counters under its own lock rather than
		// in an obs registry, so the endpoint republishes them as gauges
		// refreshed at scrape time.
		reg := obs.NewRegistry()
		acquires := reg.Gauge(obs.MetricManagerAcquires)
		releases := reg.Gauge(obs.MetricManagerReleases)
		outstanding := reg.Gauge(obs.MetricManagerOutstanding)
		mux := obs.NewMux(reg, nil, *pprofOn)
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lbmanager:", err)
			os.Exit(1)
		}
		defer ln.Close()
		go http.Serve(ln, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			st := m.Stats()
			acquires.Set(st.Acquires)
			releases.Set(st.Releases)
			var sum int64
			for _, c := range m.Counts() {
				sum += c
			}
			outstanding.Set(sum)
			mux.ServeHTTP(w, r)
		}))
		fmt.Fprintf(os.Stderr, "lbmanager: metrics at http://%s/metrics\n", ln.Addr())
	} else if *pprofOn {
		fmt.Fprintln(os.Stderr, "lbmanager: -pprof requires -http")
		os.Exit(2)
	}

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	// First signal: graceful drain. Keep answering protocol messages so
	// clients can release what they hold; exit once the outstanding
	// count reaches zero, the grace window expires, or a second signal
	// arrives.
	fmt.Fprintf(os.Stderr, "lbmanager: draining for up to %v; signal again to exit now\n", *grace)
	deadline := time.After(*grace)
	tick := time.NewTicker(50 * time.Millisecond)
	defer tick.Stop()
drain:
	for outstanding(m) > 0 {
		select {
		case <-sig:
			break drain
		case <-deadline:
			break drain
		case <-tick.C:
		}
	}
	if left := outstanding(m); left > 0 {
		fmt.Fprintf(os.Stderr, "lbmanager: exiting with %d acquisition(s) unreleased\n", left)
	}
	fmt.Fprintf(os.Stderr, "lbmanager: final counts %v\n", m.Counts())
	m.Close()
}

// outstanding sums the manager's per-server outstanding access counts.
func outstanding(m *cluster.IdealManager) int64 {
	var sum int64
	for _, c := range m.Counts() {
		sum += c
	}
	return sum
}
