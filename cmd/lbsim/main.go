// Command lbsim runs one load-balancing simulation cell and prints its
// measurements: the building block the paper's Figures 2-4 sweep over.
//
// Usage:
//
//	lbsim [-workload poisson|medium|fine] [-policy random|rr|poll|broadcast|ideal]
//	      [-d 2] [-discard 0] [-interval 100ms] [-servers 16] [-clients 6]
//	      [-load 0.9] [-accesses 100000] [-speed-factors SPEC] [-seed 1]
//
// Example (the paper's headline cell):
//
//	lbsim -workload fine -policy poll -d 2 -load 0.9
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"finelb/internal/core"
	"finelb/internal/simcluster"
	"finelb/internal/stats"
	"finelb/internal/workload"
)

func main() {
	wname := flag.String("workload", "poisson", "poisson, medium, or fine")
	pname := flag.String("policy", "poll", "random, rr, poll, broadcast, or ideal")
	d := flag.Int("d", 2, "poll size (policy=poll)")
	discard := flag.Duration("discard", 0, "slow-poll discard threshold, 0 = off (policy=poll)")
	interval := flag.Duration("interval", 100*time.Millisecond, "mean broadcast interval (policy=broadcast)")
	servers := flag.Int("servers", 16, "server nodes")
	clients := flag.Int("clients", 6, "client nodes")
	load := flag.Float64("load", 0.9, "per-server utilization in (0,1)")
	accesses := flag.Int("accesses", 100000, "service accesses to simulate")
	burst := flag.Float64("burst", 1, "arrival burst intensity (1 = none; Markov-modulated bursts)")
	fastFrac := flag.Float64("fastfrac", 0, "fraction of servers running 3x faster (heterogeneous cluster)")
	speedSpec := flag.String("speed-factors", "", `explicit per-server speeds, e.g. "4x3.25,12x0.25" (count x factor groups; overrides -fastfrac)`)
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	var w workload.Workload
	switch *wname {
	case "poisson":
		w = workload.PoissonExp(workload.PoissonExpServiceMean)
	case "medium":
		w = workload.MediumGrain()
	case "fine":
		w = workload.FineGrain()
	default:
		fmt.Fprintf(os.Stderr, "lbsim: unknown workload %q\n", *wname)
		os.Exit(2)
	}

	var p core.Policy
	switch *pname {
	case "random":
		p = core.NewRandom()
	case "rr":
		p = core.NewRoundRobin()
	case "poll":
		if *discard > 0 {
			p = core.NewPollDiscard(*d, *discard)
		} else {
			p = core.NewPoll(*d)
		}
	case "broadcast":
		p = core.NewBroadcast(*interval)
	case "ideal":
		p = core.NewIdeal()
	default:
		fmt.Fprintf(os.Stderr, "lbsim: unknown policy %q\n", *pname)
		os.Exit(2)
	}

	scaled := w.ScaledTo(*servers, *load)
	if *burst > 1 {
		scaled = scaled.WithBurstyArrivals(*burst, 50)
	}
	speeds, err := simcluster.ParseSpeedFactors(*speedSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbsim:", err)
		os.Exit(2)
	}
	if speeds == nil && *fastFrac > 0 {
		speeds = make([]float64, *servers)
		nFast := int(*fastFrac * float64(*servers))
		for i := range speeds {
			if i < nFast {
				speeds[i] = 3
			} else {
				speeds[i] = 1
			}
		}
	}
	start := time.Now()
	res, err := simcluster.Run(simcluster.Config{
		Servers:      *servers,
		Clients:      *clients,
		Workload:     scaled,
		Policy:       p,
		SpeedFactors: speeds,
		Accesses:     *accesses,
		Seed:         *seed,
	})
	wall := time.Since(start)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbsim:", err)
		os.Exit(1)
	}

	fmt.Printf("workload    %s (service mean %.3gms)\n", w.Name, w.Service.Mean()*1e3)
	fmt.Printf("policy      %s\n", p)
	fmt.Printf("cluster     %d servers, %d clients, %.0f%% busy\n", *servers, *clients, *load*100)
	fmt.Printf("accesses    %d (simulated %.2fs)\n", *accesses, res.SimDuration)
	mean, hw := stats.BatchMeans(res.Response.Samples(), 20)
	fmt.Printf("response    mean %.3fms (+-%.3fms, 95%% CI)  p50 %.3fms  p95 %.3fms  p99 %.3fms  max %.3fms\n",
		mean*1e3, hw*1e3, res.Response.Percentile(0.5)*1e3,
		res.Response.Percentile(0.95)*1e3, res.Response.Percentile(0.99)*1e3,
		res.Response.Max()*1e3)
	if res.PollTime.N() > 0 {
		fmt.Printf("polling     mean %.3fms  max %.3fms  discarded %d/%d\n",
			res.PollTime.Mean()*1e3, res.PollTime.Max()*1e3,
			res.Messages.PollsDiscarded, res.Messages.PollRequests)
	}
	fmt.Printf("queue       time-averaged length %.3f\n", res.MeanQueueLength)
	fmt.Printf("utilization mean %.3f\n", res.MeanUtilization())
	fmt.Printf("messages    %d load-information messages (%.2f per access)\n",
		res.Messages.Total(), float64(res.Messages.Total())/float64(*accesses))
	fmt.Printf("engine      %d events in %v (%.3g events/sec)\n",
		res.EventsFired, wall.Round(time.Millisecond),
		float64(res.EventsFired)/wall.Seconds())
}
