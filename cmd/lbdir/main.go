// Command lbdir runs a standalone service-availability directory
// server — the paper's "well-known central directory" (§3.1) — so that
// lbnode and lbclient processes can discover each other without static
// address files. It prints its UDP address on stdout and serves until
// interrupted.
//
// Usage:
//
//	lbdir &                                  # prints e.g. 127.0.0.1:45231
//	lbnode -n 8 -dir 127.0.0.1:45231 &
//	lbclient -dir 127.0.0.1:45231 -policy poll -d 2 -rate 500 -duration 10s
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"finelb/internal/cluster"
)

func main() {
	ttl := flag.Duration("ttl", cluster.DefaultTTL, "soft-state lifetime of published entries")
	flag.Parse()

	s, err := cluster.StartDirServer(nil, nil, *ttl)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbdir:", err)
		os.Exit(1)
	}
	fmt.Println(s.Addr())
	fmt.Fprintf(os.Stderr, "lbdir: serving soft state (ttl %v); Ctrl-C to stop\n", *ttl)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	for {
		select {
		case <-sig:
			s.Close()
			return
		case <-time.After(10 * time.Second):
			fmt.Fprintf(os.Stderr, "lbdir: %d live entries, services %v\n",
				s.Directory().Len(), s.Directory().Services())
		}
	}
}
