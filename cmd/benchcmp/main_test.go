package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeRec(t *testing.T, dir, name, body string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBenchcmp(t *testing.T) {
	dir := t.TempDir()
	base := writeRec(t, dir, "old.json", `{
		"experiment": "simscale", "config_digest": "abc", "seed": 1,
		"metrics": {"mean:events/sec": 1000000}
	}`)
	sameish := writeRec(t, dir, "ok.json", `{
		"experiment": "simscale", "config_digest": "abc", "seed": 1,
		"metrics": {"mean:events/sec": 900000}
	}`)
	slow := writeRec(t, dir, "slow.json", `{
		"experiment": "simscale", "config_digest": "abc", "seed": 1,
		"metrics": {"mean:events/sec": 700000}
	}`)
	rescaled := writeRec(t, dir, "rescaled.json", `{
		"experiment": "simscale", "config_digest": "xyz", "seed": 1,
		"metrics": {"mean:events/sec": 1}
	}`)
	other := writeRec(t, dir, "other.json", `{
		"experiment": "figure4", "config_digest": "abc", "seed": 1,
		"metrics": {"mean:events/sec": 1000000}
	}`)

	cases := []struct {
		name string
		args []string
		code int
		want string // substring of stdout+stderr
	}{
		{"within tolerance", []string{base, sameish}, 0, "-10.0%"},
		{"regression fails", []string{base, slow}, 1, "FAIL"},
		{"improvement passes", []string{sameish, base}, 0, "+11.1%"},
		{"digest change re-seeds", []string{base, rescaled}, 0, "re-seeded"},
		{"experiment mismatch", []string{base, other}, 2, "different experiments"},
		{"missing metric", []string{"-metric", "mean:nope", base, sameish}, 2, "no metric"},
		{"tighter tolerance", []string{"-max-drop", "0.05", base, sameish}, 1, "tolerance is 5%"},
		{"missing file", []string{base, filepath.Join(dir, "absent.json")}, 2, ""},
		{"usage", []string{base}, 2, "usage"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errOut strings.Builder
			code := run(tc.args, &out, &errOut)
			if code != tc.code {
				t.Fatalf("exit %d, want %d\nstdout: %s\nstderr: %s",
					code, tc.code, out.String(), errOut.String())
			}
			if all := out.String() + errOut.String(); !strings.Contains(all, tc.want) {
				t.Errorf("output missing %q:\n%s", tc.want, all)
			}
		})
	}
}
