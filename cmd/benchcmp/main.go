// Command benchcmp compares two BENCH_<experiment>.json records (see
// internal/experiments.BenchRecord) and fails when a throughput metric
// regressed beyond a tolerance. CI uses it to gate the simulator hot
// path: the previous run's BENCH_simscale.json is the baseline, and a
// >20% drop in mean events/sec fails the job.
//
// Usage:
//
//	benchcmp [-metric mean:events/sec] [-max-drop 0.20] old.json new.json
//
// Records are only compared when their config digests match (same
// experiment, scale, and column schema); a digest mismatch prints a
// note and exits 0, so intentional configuration changes re-seed the
// baseline instead of tripping the gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"finelb/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment made explicit, so tests can drive
// the command end to end.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchcmp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	metric := fs.String("metric", "mean:events/sec", "BenchRecord metric key to compare")
	maxDrop := fs.Float64("max-drop", 0.20, "maximum tolerated fractional drop in the metric (0.20 = 20%)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: benchcmp [-metric KEY] [-max-drop FRAC] old.json new.json\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	if *maxDrop < 0 || *maxDrop >= 1 {
		fmt.Fprintf(stderr, "benchcmp: -max-drop %v outside [0,1)\n", *maxDrop)
		return 2
	}

	old, err := readRecord(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "benchcmp:", err)
		return 2
	}
	cur, err := readRecord(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(stderr, "benchcmp:", err)
		return 2
	}

	if old.Experiment != cur.Experiment {
		fmt.Fprintf(stderr, "benchcmp: records are for different experiments (%q vs %q)\n",
			old.Experiment, cur.Experiment)
		return 2
	}
	if old.ConfigDigest != cur.ConfigDigest {
		fmt.Fprintf(stdout, "benchcmp: config digest changed (%s -> %s); baseline re-seeded, not compared\n",
			old.ConfigDigest, cur.ConfigDigest)
		return 0
	}

	was, ok := old.Metrics[*metric]
	if !ok {
		fmt.Fprintf(stderr, "benchcmp: baseline record has no metric %q\n", *metric)
		return 2
	}
	now, ok := cur.Metrics[*metric]
	if !ok {
		fmt.Fprintf(stderr, "benchcmp: new record has no metric %q\n", *metric)
		return 2
	}
	if was <= 0 {
		fmt.Fprintf(stdout, "benchcmp: baseline %s = %v not positive; nothing to compare\n", *metric, was)
		return 0
	}

	change := now/was - 1
	fmt.Fprintf(stdout, "benchcmp: %s %s: %.4g -> %.4g (%+.1f%%)\n",
		cur.Experiment, *metric, was, now, change*100)
	if now < was*(1-*maxDrop) {
		fmt.Fprintf(stderr, "benchcmp: FAIL: %s dropped %.1f%%, tolerance is %.0f%%\n",
			*metric, -change*100, *maxDrop*100)
		return 1
	}
	return 0
}

func readRecord(path string) (experiments.BenchRecord, error) {
	var rec experiments.BenchRecord
	buf, err := os.ReadFile(path)
	if err != nil {
		return rec, err
	}
	if err := json.Unmarshal(buf, &rec); err != nil {
		return rec, fmt.Errorf("%s: %w", path, err)
	}
	return rec, nil
}
