// Command repro regenerates the paper's tables and figures (and this
// repository's ablations). Each experiment id corresponds to one
// artifact; see DESIGN.md §3 for the index.
//
// Usage:
//
//	repro [-quick] [-seed N] [-v] <experiment>... | all | list
//
// Examples:
//
//	repro list
//	repro -quick figure4
//	repro table1 figure2 upperbound
//	repro all                 # full-fidelity run (several minutes)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"finelb/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "reduced run lengths (~1 minute for the whole suite)")
	seed := flag.Uint64("seed", 1, "random seed for all experiment streams")
	verbose := flag.Bool("v", false, "print per-cell progress")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: repro [-quick] [-seed N] [-v] <experiment>... | all | list\n\nexperiments:\n")
		for _, id := range experiments.IDs() {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", id, experiments.Describe(id))
		}
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	ids := flag.Args()
	if len(ids) == 1 {
		switch ids[0] {
		case "list":
			for _, id := range experiments.IDs() {
				fmt.Printf("%-14s %s\n", id, experiments.Describe(id))
			}
			return
		case "all":
			ids = experiments.IDs()
		}
	}

	opts := experiments.Options{Quick: *quick, Seed: *seed}
	if *verbose {
		opts.Progress = os.Stderr
	}
	for _, id := range ids {
		run, err := experiments.Get(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		start := time.Now()
		tbl, err := run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "repro: %s failed: %v\n", id, err)
			os.Exit(1)
		}
		if *csv {
			if err := tbl.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			continue
		}
		if err := tbl.Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("  (%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
