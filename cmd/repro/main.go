// Command repro regenerates the paper's tables and figures (and this
// repository's ablations). Each experiment id corresponds to one
// artifact; see DESIGN.md §3 for the index.
//
// Usage:
//
//	repro [-quick] [-seed N] [-v] [-transport net|mem] [-servers N] [-accesses N]
//	      [-speed-factors SPEC] [-format text|json|csv] [-out FILE] [-bench DIR]
//	      [-metrics FILE] <experiment>... | all | list
//
// Examples:
//
//	repro list
//	repro -quick figure4
//	repro table1 figure2 upperbound
//	repro -format=json -out results.json figure4 figure6
//	repro -transport=mem figure6      # prototype experiments without sockets
//	repro -servers 10000 -accesses 10000000 simscale   # hot path at full scale
//	repro -bench bench -quick all     # also drop BENCH_<id>.json records
//	repro -quick -metrics metrics.json figure6   # dump per-cell obs snapshots
//	repro all                         # full-fidelity run (several minutes)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"finelb/internal/experiments"
	"finelb/internal/simcluster"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment made explicit, so tests can drive
// the command end to end.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("repro", flag.ContinueOnError)
	fs.SetOutput(stderr)
	quick := fs.Bool("quick", false, "reduced run lengths (~1 minute for the whole suite)")
	seed := fs.Uint64("seed", 1, "random seed for all experiment streams")
	verbose := fs.Bool("v", false, "print per-cell progress")
	transportName := fs.String("transport", "net", "prototype messaging substrate: net (real loopback sockets) or mem (in-memory fabric)")
	format := fs.String("format", "text", "output format: text, json, or csv")
	csv := fs.Bool("csv", false, "emit CSV (deprecated; same as -format=csv)")
	out := fs.String("out", "", "write output to this file instead of stdout")
	servers := fs.Int("servers", 0, "override cluster size for scale-aware experiments (simscale); 0 = experiment default")
	accesses := fs.Int("accesses", 0, "override access count for scale-aware experiments (simscale); 0 = experiment default")
	speedSpec := fs.String("speed-factors", "", `override heterogeneous server speeds for speed-aware experiments (hetchurn), e.g. "4x3.25,12x0.25"`)
	benchDir := fs.String("bench", "", "also write one BENCH_<id>.json record per experiment into this directory")
	metricsOut := fs.String("metrics", "", "write every cell's obs metrics snapshot to this file as a JSON array")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: repro [-quick] [-seed N] [-v] [-transport net|mem] [-servers N] [-accesses N] [-speed-factors SPEC] [-format text|json|csv] [-out FILE] [-bench DIR] [-metrics FILE] <experiment>... | all | list\n\nexperiments:\n")
		for _, id := range experiments.IDs() {
			desc, _ := experiments.Describe(id)
			fmt.Fprintf(stderr, "  %-14s %s\n", id, desc)
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *csv {
		*format = "csv"
	}
	switch *transportName {
	case "net", "mem":
	default:
		fmt.Fprintf(stderr, "repro: unknown transport %q (want net or mem)\n", *transportName)
		return 2
	}
	switch *format {
	case "text", "json", "csv":
	default:
		fmt.Fprintf(stderr, "repro: unknown format %q (want text, json, or csv)\n", *format)
		return 2
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}

	ids := fs.Args()
	if len(ids) == 1 {
		switch ids[0] {
		case "list":
			for _, id := range experiments.IDs() {
				desc, _ := experiments.Describe(id)
				fmt.Fprintf(stdout, "%-14s %s\n", id, desc)
			}
			return 0
		case "all":
			ids = experiments.IDs()
		}
	}

	dst := stdout
	var outFile *os.File
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		outFile = f
		dst = f
	}

	speedFactors, err := simcluster.ParseSpeedFactors(*speedSpec)
	if err != nil {
		fmt.Fprintf(stderr, "repro: -speed-factors: %v\n", err)
		return 2
	}

	opts := experiments.Options{
		Quick: *quick, Seed: *seed, Transport: *transportName,
		Servers: *servers, Accesses: *accesses,
		SpeedFactors: speedFactors,
	}
	if *verbose {
		opts.Progress = stderr
	}
	if *metricsOut != "" {
		opts.Metrics = &experiments.MetricsLog{}
	}
	var tables []*experiments.Table
	fail := func(err error) int {
		fmt.Fprintln(stderr, err)
		if outFile != nil {
			outFile.Close()
		}
		return 1
	}
	for _, id := range ids {
		runner, err := experiments.Get(id)
		if err != nil {
			fmt.Fprintln(stderr, err)
			if outFile != nil {
				outFile.Close()
			}
			return 2
		}
		start := time.Now()
		tbl, err := runner(opts)
		if err != nil {
			return fail(fmt.Errorf("repro: %s failed: %w", id, err))
		}
		wall := time.Since(start)
		if *benchDir != "" {
			rec := experiments.NewBenchRecord(id, opts, tbl, wall)
			if err := experiments.WriteBenchRecord(*benchDir, rec); err != nil {
				return fail(err)
			}
		}
		switch *format {
		case "json":
			// Collected and emitted as one array after all runs.
			tables = append(tables, tbl)
		case "csv":
			if err := tbl.WriteCSV(dst); err != nil {
				return fail(err)
			}
		default:
			if err := tbl.Render(dst); err != nil {
				return fail(err)
			}
			fmt.Fprintf(dst, "  (%s completed in %v)\n\n", id, wall.Round(time.Millisecond))
		}
	}
	if *format == "json" {
		if err := experiments.WriteTablesJSON(dst, tables); err != nil {
			return fail(err)
		}
	}
	if opts.Metrics != nil {
		f, err := os.Create(*metricsOut)
		if err != nil {
			return fail(err)
		}
		if err := opts.Metrics.WriteJSON(f); err != nil {
			f.Close()
			return fail(err)
		}
		if err := f.Close(); err != nil {
			return fail(err)
		}
	}
	if outFile != nil {
		if err := outFile.Close(); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}
	return 0
}
