package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"finelb/internal/experiments"
)

// repro runs the command in-process and returns stdout, stderr, and the
// exit code.
func repro(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var stdout, stderr strings.Builder
	code := run(args, &stdout, &stderr)
	return stdout.String(), stderr.String(), code
}

// tableDoc mirrors the JSON schema documented in EXPERIMENTS.md.
type tableDoc struct {
	ID     string   `json:"id"`
	Title  string   `json:"title"`
	Header []string `json:"header"`
	Rows   [][]any  `json:"rows"`
	Notes  []string `json:"notes"`
}

func parseTables(t *testing.T, out string) []tableDoc {
	t.Helper()
	var tables []tableDoc
	if err := json.Unmarshal([]byte(out), &tables); err != nil {
		t.Fatalf("output is not a JSON table array: %v\n%s", err, out)
	}
	return tables
}

func TestListPrintsEveryID(t *testing.T) {
	out, _, code := repro(t, "list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, id := range experiments.IDs() {
		if !strings.Contains(out, id) {
			t.Errorf("list output missing %q", id)
		}
	}
}

func TestNoArgsShowsUsage(t *testing.T) {
	_, errOut, code := repro(t)
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut, "usage:") {
		t.Errorf("no usage on stderr:\n%s", errOut)
	}
}

func TestUnknownExperiment(t *testing.T) {
	_, errOut, code := repro(t, "nope")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut, "nope") {
		t.Errorf("error does not name the id:\n%s", errOut)
	}
}

func TestUnknownFormat(t *testing.T) {
	_, _, code := repro(t, "-format=xml", "table1")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestUnknownTransport(t *testing.T) {
	_, errOut, code := repro(t, "-transport=carrier-pigeon", "table1")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut, "carrier-pigeon") {
		t.Errorf("error does not name the transport:\n%s", errOut)
	}
}

// TestFailoverMemTransport drives a socket-using experiment end to end
// over the in-memory fabric: the whole cluster must come up, crash a
// node, and keep serving without ever opening a file descriptor.
func TestFailoverMemTransport(t *testing.T) {
	if testing.Short() {
		t.Skip("failover phases sleep through real time (~2s)")
	}
	out, errOut, code := repro(t, "-quick", "-transport=mem", "-format=json", "failover")
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, errOut)
	}
	tables := parseTables(t, out)
	if len(tables) != 1 || tables[0].ID != "failover" || len(tables[0].Rows) != 2 {
		t.Fatalf("tables: %+v", tables)
	}
	// After soft-state expiry no errors should remain (second phase).
	if errs, ok := tables[0].Rows[1][2].(float64); !ok || errs != 0 {
		t.Errorf("post-expiry errors = %#v, want 0", tables[0].Rows[1][2])
	}
}

func TestTable1AllFormats(t *testing.T) {
	text, _, code := repro(t, "-quick", "table1")
	if code != 0 || !strings.Contains(text, "== table1:") {
		t.Fatalf("text run: exit %d\n%s", code, text)
	}

	csvOut, _, code := repro(t, "-quick", "-format=csv", "table1")
	if code != 0 || !strings.HasPrefix(csvOut, "Workload,") {
		t.Fatalf("csv run: exit %d\n%s", code, csvOut)
	}
	// The deprecated -csv alias must keep working.
	alias, _, code := repro(t, "-quick", "-csv", "table1")
	if code != 0 || alias != csvOut {
		t.Fatalf("-csv alias diverged from -format=csv (exit %d)", code)
	}

	jsonOut, _, code := repro(t, "-quick", "-format=json", "table1")
	if code != 0 {
		t.Fatalf("json run: exit %d", code)
	}
	tables := parseTables(t, jsonOut)
	if len(tables) != 1 || tables[0].ID != "table1" || len(tables[0].Rows) != 2 {
		t.Fatalf("json tables: %+v", tables)
	}
}

func TestOutFlagWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	stdout, _, code := repro(t, "-quick", "-format=json", "-out", path, "table1")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if stdout != "" {
		t.Errorf("-out still wrote to stdout:\n%s", stdout)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if tables := parseTables(t, string(buf)); tables[0].ID != "table1" {
		t.Errorf("file tables: %+v", tables)
	}
}

func TestBenchFlagWritesRecord(t *testing.T) {
	dir := t.TempDir()
	_, _, code := repro(t, "-quick", "-bench", dir, "table1")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	buf, err := os.ReadFile(filepath.Join(dir, "BENCH_table1.json"))
	if err != nil {
		t.Fatal(err)
	}
	var rec experiments.BenchRecord
	if err := json.Unmarshal(buf, &rec); err != nil {
		t.Fatalf("invalid bench record: %v\n%s", err, buf)
	}
	if rec.Experiment != "table1" || !rec.Quick || rec.ConfigDigest == "" {
		t.Errorf("record fields wrong: %+v", rec)
	}
	if rec.WallSeconds <= 0 || len(rec.Metrics) == 0 {
		t.Errorf("record missing measurements: %+v", rec)
	}
}

// TestMetricsFlagWritesSnapshots checks -metrics: a sweep run must
// leave a JSON array with one labeled obs snapshot per cell.
func TestMetricsFlagWritesSnapshots(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.json")
	_, errOut, code := repro(t, "-quick", "-metrics", path, "figure4")
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, errOut)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var recs []experiments.MetricsRecord
	if err := json.Unmarshal(buf, &recs); err != nil {
		t.Fatalf("metrics file is not a record array: %v\n%s", err, buf)
	}
	// Quick figure4: 3 workloads x 2 loads x 6 policies.
	if len(recs) != 36 {
		t.Fatalf("%d records, want 36", len(recs))
	}
	for _, rec := range recs {
		if rec.Experiment != "figure4" || rec.Substrate != "sim" || rec.Cell == "" {
			t.Fatalf("record labels wrong: %+v", rec)
		}
		if rec.Metrics == nil || len(rec.Metrics.Metrics) == 0 {
			t.Fatalf("record %q has no snapshot", rec.Cell)
		}
	}
	// Every cell ran accesses, so dispatch counters must be live.
	if v := recs[0].Metrics.Value("lb_dispatches_total"); v <= 0 {
		t.Errorf("lb_dispatches_total = %d in first record", v)
	}
}

// TestFigure4JSON is the acceptance check: the headline simulation
// sweep must produce valid machine-readable JSON.
func TestFigure4JSON(t *testing.T) {
	out, _, code := repro(t, "-quick", "-format=json", "figure4")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	tables := parseTables(t, out)
	if len(tables) != 1 || tables[0].ID != "figure4" {
		t.Fatalf("tables: %+v", tables)
	}
	f4 := tables[0]
	if len(f4.Rows) != 6 { // 3 workloads x 2 loads (quick)
		t.Fatalf("rows: %d", len(f4.Rows))
	}
	// Every policy cell must be a JSON number (not a formatted string).
	for r, row := range f4.Rows {
		if len(row) != len(f4.Header) {
			t.Fatalf("row %d has %d cells for %d columns", r, len(row), len(f4.Header))
		}
		for c := 2; c < len(row); c++ {
			v, ok := row[c].(float64)
			if !ok || v <= 0 {
				t.Errorf("cell (%d,%d) = %#v, want a positive number", r, c, row[c])
			}
		}
	}
}

// TestDegradedJSON is the second acceptance check: the fault-injection
// matrix must produce valid machine-readable JSON.
func TestDegradedJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("prototype half of degraded takes ~15s")
	}
	out, _, code := repro(t, "-quick", "-format=json", "degraded")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	tables := parseTables(t, out)
	if len(tables) != 1 || tables[0].ID != "degraded" {
		t.Fatalf("tables: %+v", tables)
	}
	deg := tables[0]
	if len(deg.Rows) != 6 { // 3 policies x 2 substrates
		t.Fatalf("rows: %d", len(deg.Rows))
	}
	if deg.Rows[0][0] != "sim" || deg.Rows[3][0] != "proto" {
		t.Errorf("substrate column wrong: %v / %v", deg.Rows[0][0], deg.Rows[3][0])
	}
	for r, row := range deg.Rows {
		for _, c := range []int{2, 3, 4, 5, 6} { // Healthy, Degraded, Ratio, Lost, Retries
			if _, ok := row[c].(float64); !ok {
				t.Errorf("row %d col %d = %#v, want a number", r, c, row[c])
			}
		}
	}
}
