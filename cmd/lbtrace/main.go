// Command lbtrace generates, inspects, and rescales workload trace
// files in the repository's text trace format (one "arrival_us
// service_us" pair per line). It is the tooling around Table 1: the
// synthetic Teoma-like traces can be materialized once and replayed.
//
// Usage:
//
//	lbtrace gen   -workload fine -n 100000 -seed 1 -out fine.trace
//	lbtrace stats -in fine.trace
//	lbtrace scale -in fine.trace -factor 0.5 -out fine-2x-load.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"finelb/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		cmdGen(os.Args[2:])
	case "stats":
		cmdStats(os.Args[2:])
	case "scale":
		cmdScale(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  lbtrace gen   -workload poisson|medium|fine [-n N] [-seed S] -out FILE
  lbtrace stats -in FILE
  lbtrace scale -in FILE -factor F -out FILE`)
	os.Exit(2)
}

func cmdGen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	wname := fs.String("workload", "fine", "poisson, medium, or fine")
	n := fs.Int("n", 100000, "accesses to generate")
	seed := fs.Uint64("seed", 1, "random seed")
	out := fs.String("out", "", "output file (- for stdout)")
	_ = fs.Parse(args)

	var w workload.Workload
	switch *wname {
	case "poisson":
		w = workload.PoissonExp(workload.PoissonExpServiceMean)
	case "medium":
		w = workload.MediumGrain()
	case "fine":
		w = workload.FineGrain()
	default:
		fmt.Fprintf(os.Stderr, "lbtrace: unknown workload %q\n", *wname)
		os.Exit(2)
	}
	tr := w.Generate(*n, *seed)
	writeTrace(tr, *out)
	fmt.Fprintf(os.Stderr, "lbtrace: wrote %d accesses: %v\n", len(tr), tr.Stats())
}

func cmdStats(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	in := fs.String("in", "", "input trace file")
	_ = fs.Parse(args)
	tr := readTrace(*in)
	st := tr.Stats()
	fmt.Printf("accesses       %d\n", st.Count)
	fmt.Printf("arrival mean   %.4g ms\n", st.ArrivalMean*1e3)
	fmt.Printf("arrival std    %.4g ms\n", st.ArrivalStd*1e3)
	fmt.Printf("service mean   %.4g ms\n", st.ServiceMean*1e3)
	fmt.Printf("service std    %.4g ms\n", st.ServiceStd*1e3)
	if st.ArrivalMean > 0 {
		fmt.Printf("offered load   %.4g per server-second per server\n", st.ServiceMean/st.ArrivalMean)
	}
}

func cmdScale(args []string) {
	fs := flag.NewFlagSet("scale", flag.ExitOnError)
	in := fs.String("in", "", "input trace file")
	factor := fs.Float64("factor", 1, "multiply every inter-arrival interval by this")
	out := fs.String("out", "", "output file (- for stdout)")
	_ = fs.Parse(args)
	if *factor <= 0 {
		fmt.Fprintln(os.Stderr, "lbtrace: -factor must be positive")
		os.Exit(2)
	}
	tr := readTrace(*in).ScaleArrivals(*factor)
	writeTrace(tr, *out)
	fmt.Fprintf(os.Stderr, "lbtrace: wrote %d accesses: %v\n", len(tr), tr.Stats())
}

func readTrace(path string) workload.Trace {
	if path == "" {
		fmt.Fprintln(os.Stderr, "lbtrace: -in is required")
		os.Exit(2)
	}
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbtrace:", err)
		os.Exit(1)
	}
	defer f.Close()
	tr, err := workload.ReadTrace(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbtrace:", err)
		os.Exit(1)
	}
	return tr
}

func writeTrace(tr workload.Trace, path string) {
	w := os.Stdout
	if path != "-" && path != "" {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lbtrace:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	} else if path == "" {
		fmt.Fprintln(os.Stderr, "lbtrace: -out is required")
		os.Exit(2)
	}
	if err := tr.Write(w); err != nil {
		fmt.Fprintln(os.Stderr, "lbtrace:", err)
		os.Exit(1)
	}
}
