// Command lbgw is the multi-tenant HTTP front door: it self-hosts a
// prototype cluster (directory, server nodes, polling clients) on the
// chosen transport and serves REST traffic on top of it through
// internal/gateway — per-tenant token-bucket rate limiting, admission
// control, and sticky-session routing with a bounded violation budget.
//
// Usage:
//
//	lbgw [-addr :8080] [-transport net] [-tenants SPEC] [-policy poll -d 2]
//	     [-servers 4] [-clients 2] [-http :0] [-pprof] [-seed 1]
//
// The gateway itself serves /access, /healthz, /metrics, and /trace;
// -http additionally exposes the same obs registry on a plain TCP
// mux (useful when the gateway listens on the mem fabric), and -pprof
// mounts /debug/pprof/ on both.
//
// With -loadgen the process instead drives its own gateway with the
// open-loop generator and exits: -rate, -requests, -sessions,
// -serviceus shape the load, -bench DIR writes BENCH_gateway.json,
// and -smoke makes the exit status assert that requests were admitted
// and shutdown was clean (the CI gateway smoke step).
//
// The -tenants specification is documented on gateway.ParseTenants,
// e.g. "paid:rate=500,burst=50,inflight=64,sticky,budget=5;free:rate=50".
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"finelb/internal/cluster"
	"finelb/internal/core"
	"finelb/internal/experiments"
	"finelb/internal/gateway"
	"finelb/internal/obs"
	"finelb/internal/transport"
)

func main() { os.Exit(run()) }

func run() int {
	addr := flag.String("addr", "", "gateway listen address (TCP; requires -transport net; empty picks a fresh loopback port)")
	trName := flag.String("transport", "net", "transport the cluster and gateway run on: net or mem")
	tenantsSpec := flag.String("tenants", "default:sticky", "tenant specification (see gateway.ParseTenants)")
	defTenant := flag.String("default", "", "tenant assumed for requests without X-Tenant (default: first in -tenants)")
	pname := flag.String("policy", "poll", "routing policy: random, rr, poll, or ideal")
	d := flag.Int("d", 2, "servers polled per access (policy=poll)")
	servers := flag.Int("servers", 4, "backend server nodes to self-host")
	clients := flag.Int("clients", 2, "polling clients the gateway routes through")
	slowProb := flag.Float64("slowprob", cluster.DefaultSlowProb, "busy-node slow-answer probability (negative disables)")
	httpAddr := flag.String("http", "", "also serve /metrics on this TCP address; empty disables")
	pprofOn := flag.Bool("pprof", false, "expose /debug/pprof/ handlers on the HTTP surfaces")
	seed := flag.Uint64("seed", 1, "random seed")

	loadgen := flag.Bool("loadgen", false, "drive the gateway with the open-loop generator and exit")
	rate := flag.Float64("rate", 500, "loadgen aggregate arrival rate, requests/second")
	requests := flag.Int("requests", 1000, "loadgen total requests")
	sessions := flag.Int("sessions", 16, "loadgen distinct sessions per tenant (0 disables session keys)")
	serviceUs := flag.Uint64("serviceus", 0, "loadgen per-request service demand override, microseconds")
	benchDir := flag.String("bench", "", "with -loadgen, write BENCH_gateway.json into this directory")
	smoke := flag.Bool("smoke", false, "with -loadgen, fail unless requests were admitted and shutdown is clean")
	flag.Parse()

	fail := func(format string, a ...any) int {
		fmt.Fprintf(os.Stderr, "lbgw: "+format+"\n", a...)
		return 1
	}

	var tr transport.Transport
	switch *trName {
	case "net":
		tr = transport.Net{}
	case "mem":
		tr = transport.NewMem(transport.MemConfig{Seed: *seed})
	default:
		return fail("unknown transport %q (want net or mem)", *trName)
	}
	if *addr != "" && *trName != "net" {
		return fail("-addr requires -transport net")
	}

	var policy core.Policy
	switch *pname {
	case "random":
		policy = core.NewRandom()
	case "rr":
		policy = core.NewRoundRobin()
	case "poll":
		policy = core.NewPoll(*d)
	case "ideal":
		policy = core.NewIdeal()
	default:
		return fail("unknown policy %q (want random, rr, poll, or ideal)", *pname)
	}

	tenants, err := gateway.ParseTenants(*tenantsSpec)
	if err != nil {
		return fail("%v", err)
	}
	def := *defTenant
	if def == "" {
		def = tenants[0].Name
	}

	// One registry spans the cluster and the gateway, so /metrics is
	// the whole front door in one snapshot.
	reg := obs.NewRegistry()
	cl, err := cluster.StartCluster(cluster.ExperimentConfig{
		Servers:   *servers,
		Clients:   *clients,
		Policy:    policy,
		Transport: tr,
		SlowProb:  *slowProb,
		Metrics:   reg,
		Seed:      *seed,
	})
	if err != nil {
		return fail("starting cluster: %v", err)
	}
	defer cl.Close()

	gw, err := gateway.New(gateway.Config{
		Backends:      cl.Clients,
		Tenants:       tenants,
		DefaultTenant: def,
		Registry:      reg,
		Pprof:         *pprofOn,
	})
	if err != nil {
		return fail("%v", err)
	}
	var ln transport.Listener
	if *addr != "" {
		ln, err = gateway.ListenTCP(*addr)
	} else {
		ln, err = tr.Listen()
	}
	if err != nil {
		return fail("listen: %v", err)
	}
	if err := gw.Start(ln); err != nil {
		return fail("%v", err)
	}
	fmt.Fprintf(os.Stderr, "lbgw: %d tenant(s), %d server(s), policy %s on %s at http://%s\n",
		len(tenants), *servers, *pname, *trName, gw.Addr())

	if *httpAddr != "" {
		hln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			_ = gw.Close()
			return fail("metrics listener: %v", err)
		}
		defer func() { _ = hln.Close() }()
		go func() { _ = http.Serve(hln, obs.NewMux(reg, nil, *pprofOn)) }()
		fmt.Fprintf(os.Stderr, "lbgw: metrics at http://%s/metrics\n", hln.Addr())
	}

	if *loadgen {
		return runLoadGen(gw, tr, tenants, loadGenFlags{
			rate: *rate, requests: *requests, sessions: *sessions,
			serviceUs: uint32(*serviceUs), seed: *seed,
			benchDir: *benchDir, smoke: *smoke,
			transport: *trName, policy: *pname, tenantsSpec: *tenantsSpec,
		})
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	if err := gw.Close(); err != nil {
		return fail("shutdown: %v", err)
	}
	printSummary(reg)
	return 0
}

type loadGenFlags struct {
	rate      float64
	requests  int
	sessions  int
	serviceUs uint32
	seed      uint64
	benchDir  string
	smoke     bool
	// Config identity for the bench record's digest.
	transport, policy, tenantsSpec string
}

func runLoadGen(gw *gateway.Gateway, tr transport.Transport, tenants []gateway.TenantConfig, f loadGenFlags) int {
	names := make([]string, len(tenants))
	for i, tc := range tenants {
		names[i] = tc.Name
	}
	res, err := gateway.RunLoadGen(gateway.LoadGenConfig{
		URL:       "http://" + gw.Addr(),
		Client:    gateway.HTTPClient(tr, 10*time.Second),
		Rate:      f.rate,
		Requests:  f.requests,
		Tenants:   names,
		Sessions:  f.sessions,
		ServiceUs: f.serviceUs,
		Seed:      f.seed,
	})
	if err != nil {
		_ = gw.Close()
		fmt.Fprintf(os.Stderr, "lbgw: loadgen: %v\n", err)
		return 1
	}
	fmt.Println(res.Describe())
	if f.benchDir != "" {
		rec := experiments.BenchRecord{
			Experiment:  "gateway",
			Seed:        f.seed,
			WallSeconds: res.Wall.Seconds(),
			Metrics: map[string]float64{
				"sent":               float64(res.Sent),
				"ok":                 float64(res.OK),
				"rate_limited":       float64(res.RateLimited),
				"rejected_admission": float64(res.RejectedAdmission),
				"overloads":          float64(res.Overloads),
				"errors":             float64(res.Errors),
				"sticky":             float64(res.Sticky),
				"violations":         float64(res.Violations),
				"mean_ms":            res.Latency.Mean() * 1e3,
				"p95_ms":             res.Latency.Percentile(0.95) * 1e3,
			},
		}
		digest := sha256.Sum256([]byte(fmt.Sprintf("gateway|transport=%s|policy=%s|tenants=%s|rate=%v|requests=%d",
			f.transport, f.policy, f.tenantsSpec, f.rate, f.requests)))
		rec.ConfigDigest = hex.EncodeToString(digest[:8])
		if err := experiments.WriteBenchRecord(f.benchDir, rec); err != nil {
			_ = gw.Close()
			fmt.Fprintf(os.Stderr, "lbgw: bench record: %v\n", err)
			return 1
		}
	}
	closeErr := gw.Close()
	if f.smoke {
		if res.OK == 0 {
			fmt.Fprintf(os.Stderr, "lbgw: smoke: no admitted requests (%s)\n", res.Describe())
			return 1
		}
		if closeErr != nil {
			fmt.Fprintf(os.Stderr, "lbgw: smoke: unclean shutdown: %v\n", closeErr)
			return 1
		}
		fmt.Printf("smoke ok: %d/%d requests admitted, clean shutdown\n", res.OK, res.Sent)
	} else if closeErr != nil {
		fmt.Fprintf(os.Stderr, "lbgw: shutdown: %v\n", closeErr)
		return 1
	}
	return 0
}

func printSummary(reg *obs.Registry) {
	snap := reg.Snapshot()
	fmt.Fprintf(os.Stderr, "lbgw: requests=%d admitted=%d rate_limited=%d admission_rejected=%d sticky_hits=%d violations=%d\n",
		snap.Value(obs.MetricGatewayRequests),
		snap.Value(obs.MetricGatewayAdmitted),
		snap.Value(obs.MetricGatewayRejectedRate),
		snap.Value(obs.MetricGatewayRejectedAdmission),
		snap.Value(obs.MetricGatewayStickyHits),
		snap.Value(obs.MetricGatewayStickyViolations))
}
